//! Incrementality audit: miss-reason attribution for recomputed phases.
//!
//! The memoized [`crate::session::AnalysisSession`] and the persistent
//! [`crate::diskcache::DiskCache`] both key artifacts by content
//! fingerprints plus the configuration facets each phase reads. When a
//! run recomputes something, this module answers the follow-up question
//! the counters alone cannot: *why was the cached artifact unusable?*
//!
//! ## The ledger
//!
//! After every unmetered analysis the session captures a [`Ledger`] — a
//! compact record of the key components that existed during the run:
//!
//! * the program fingerprint and the globals fingerprint,
//! * per procedure (by *name*, so renumbering across edits does not
//!   confuse attribution): its own IR fingerprint and its closure
//!   fingerprint (the Merkle-over-SCC digest cache keys build on),
//! * per phase: the rendered configuration facets its cache key reads,
//! * the disk-cache outcome keys this session has stored (bounded), so
//!   a later absence can be classified as an eviction.
//!
//! With a disk cache attached the ledger is persisted next to it under
//! `audit/<label>.ledger` (framed exactly like a cache entry, so torn
//! writes and version skew degrade to "no previous ledger" — a first
//! run — never a wrong attribution). Without one it lives in session
//! memory, attributing recomputation across analyses of one process.
//!
//! ## Classification
//!
//! Diffing the previous ledger against the current key components gives
//! every recomputed artifact a [`MissReason`]:
//!
//! * [`MissReason::FirstComputation`] — no previous record exists.
//! * [`MissReason::InputChanged`] — an upstream fingerprint component
//!   moved; the reason names the changed procedures and whether the
//!   global table changed.
//! * [`MissReason::ConfigFacetChanged`] — the content was unchanged but
//!   a configuration facet the phase reads differed.
//! * [`MissReason::Evicted`] — a disk entry this session once stored is
//!   gone (LRU byte budget or manual clear).
//! * [`MissReason::Quarantined`] — the disk entry failed validation.
//! * [`MissReason::FormatVersionMismatch`] — the entry predates the
//!   current on-disk format or toolchain.
//!
//! The audit is *logical*: an artifact whose key components are
//! unchanged counts as up to date even when a fresh process recomputes
//! it in memory — the question answered is "did the inputs move", not
//! "was this process warm".

use crate::diskcache::{encode_entry, validate_entry};
use crate::driver::AnalysisConfig;
use crate::session::SessionPhase;
use ipcp_ir::codec::{decode_from_slice, encode_to_vec, ByteReader, ByteWriter, Wire, WireError};
use ipcp_ir::fingerprint::Fnv1a;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Upper bound on remembered disk-cache outcome keys; beyond it the
/// oldest keys are dropped (an absence then reads as a first
/// computation, which is the safe under-claim).
pub const MAX_OUTCOME_KEYS: usize = 4096;

/// How many recomputed units a phase line shows before truncating (the
/// full list stays available through a `why <proc>` filter).
const RENDER_LIMIT: usize = 8;

// ---- miss reasons ---------------------------------------------------------

/// Why a cached artifact could not be reused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MissReason {
    /// Nothing was ever recorded for this unit under this label.
    FirstComputation,
    /// An upstream fingerprint component changed.
    InputChanged {
        /// Procedures whose own IR fingerprint moved (by name).
        procs: Vec<String>,
        /// Whether the global table (or entry procedure) changed.
        globals: bool,
    },
    /// The inputs were unchanged but a configuration facet the phase
    /// reads differed from the previous run.
    ConfigFacetChanged {
        /// The facet names that changed (e.g. `"gsa"`, `"solver"`).
        facets: Vec<String>,
    },
    /// A disk entry this session had stored was deleted (LRU eviction
    /// or `cache clear`).
    Evicted,
    /// The disk entry failed validation and was quarantined.
    Quarantined {
        /// The stable quarantine reason (e.g. `"checksum mismatch"`).
        reason: String,
    },
    /// The disk entry was written by another on-disk format version or
    /// toolchain.
    FormatVersionMismatch,
}

impl MissReason {
    /// Stable kebab-case label used in JSON, metrics, and totals.
    pub fn label(&self) -> &'static str {
        match self {
            MissReason::FirstComputation => "first-computation",
            MissReason::InputChanged { .. } => "input-changed",
            MissReason::ConfigFacetChanged { .. } => "config-facet-changed",
            MissReason::Evicted => "evicted",
            MissReason::Quarantined { .. } => "quarantined",
            MissReason::FormatVersionMismatch => "format-version-mismatch",
        }
    }

    /// One-line human rendering, detail included.
    pub fn describe(&self) -> String {
        match self {
            MissReason::FirstComputation => "first computation".to_string(),
            MissReason::InputChanged { procs, globals } => {
                let mut parts = Vec::new();
                if !procs.is_empty() {
                    parts.push(format!("procs: {}", join_truncated(procs, RENDER_LIMIT)));
                }
                if *globals {
                    parts.push("globals".to_string());
                }
                if parts.is_empty() {
                    "input changed".to_string()
                } else {
                    format!("input changed ({})", parts.join("; "))
                }
            }
            MissReason::ConfigFacetChanged { facets } => {
                format!("config facet changed ({})", facets.join(", "))
            }
            MissReason::Evicted => "evicted from disk cache".to_string(),
            MissReason::Quarantined { reason } => format!("quarantined ({reason})"),
            MissReason::FormatVersionMismatch => "format version mismatch".to_string(),
        }
    }
}

fn join_truncated(items: &[String], limit: usize) -> String {
    if items.len() <= limit {
        items.join(", ")
    } else {
        format!(
            "{} … (+{} more)",
            items[..limit].join(", "),
            items.len() - limit
        )
    }
}

// ---- the ledger -----------------------------------------------------------

/// One procedure's key components, recorded by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerProc {
    /// Source name of the procedure.
    pub name: String,
    /// Fingerprint of the procedure's own IR.
    pub own_fp: u64,
    /// Closure fingerprint (own IR plus everything transitively
    /// reachable plus the global table).
    pub closure_fp: u64,
}

impl Wire for LedgerProc {
    fn encode(&self, w: &mut ByteWriter) {
        self.name.encode(w);
        self.own_fp.encode(w);
        self.closure_fp.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(LedgerProc {
            name: String::decode(r)?,
            own_fp: u64::decode(r)?,
            closure_fp: u64::decode(r)?,
        })
    }
}

/// The per-run key-component record the audit diffs against. See the
/// module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Fingerprint of the pristine program.
    pub base_fp: u64,
    /// Fingerprint of the global table and entry procedure.
    pub globals_fp: u64,
    /// Per-procedure key components, in program order.
    pub procs: Vec<LedgerProc>,
    /// Per-phase rendered configuration facets (phase name →
    /// `(facet, value)` pairs, both rendered as stable strings).
    pub facets: BTreeMap<String, Vec<(String, String)>>,
    /// Disk-cache outcome keys stored under this label, newest last,
    /// bounded by [`MAX_OUTCOME_KEYS`].
    pub outcome_keys: Vec<u64>,
}

impl Wire for Ledger {
    fn encode(&self, w: &mut ByteWriter) {
        self.base_fp.encode(w);
        self.globals_fp.encode(w);
        self.procs.encode(w);
        self.facets.encode(w);
        self.outcome_keys.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Ledger {
            base_fp: u64::decode(r)?,
            globals_fp: u64::decode(r)?,
            procs: Vec::<LedgerProc>::decode(r)?,
            facets: BTreeMap::<String, Vec<(String, String)>>::decode(r)?,
            outcome_keys: Vec::<u64>::decode(r)?,
        })
    }
}

impl Ledger {
    /// Records `key` as stored under this label, deduplicating and
    /// enforcing the [`MAX_OUTCOME_KEYS`] bound.
    pub fn remember_outcome_key(&mut self, key: u64) {
        if self.outcome_keys.contains(&key) {
            return;
        }
        self.outcome_keys.push(key);
        if self.outcome_keys.len() > MAX_OUTCOME_KEYS {
            let drop = self.outcome_keys.len() - MAX_OUTCOME_KEYS;
            self.outcome_keys.drain(..drop);
        }
    }

    fn proc_map(&self) -> BTreeMap<&str, &LedgerProc> {
        self.procs.iter().map(|p| (p.name.as_str(), p)).collect()
    }
}

// ---- facet rendering ------------------------------------------------------

/// The phases the audit covers whose artifacts are keyed per procedure.
pub const PROC_SCOPED: [SessionPhase; 5] = [
    SessionPhase::Ssa,
    SessionPhase::ReturnJf,
    SessionPhase::SymVals,
    SessionPhase::ForwardJf,
    SessionPhase::Dce,
];

/// The phases the audit covers whose artifacts are keyed per program
/// state.
pub const PROGRAM_SCOPED: [SessionPhase; 4] = [
    SessionPhase::CallGraph,
    SessionPhase::ModRef,
    SessionPhase::Solve,
    SessionPhase::Subst,
];

fn call_sym_mode_name(config: &AnalysisConfig) -> &'static str {
    // Mirrors the session's `CallSymMode` collapse: the facet symbolic
    // evaluation actually reads.
    if !(config.return_jump_functions && config.mod_info) {
        "pessimistic"
    } else if config.rjf_full_composition {
        "compose"
    } else {
        "const-eval"
    }
}

/// Renders, per audited phase, exactly the configuration facets its
/// cache key reads (mirroring the session's key structs). Facet names
/// match the CLI flag vocabulary so `ipcp why` output reads naturally.
pub fn render_facets(config: &AnalysisConfig) -> BTreeMap<String, Vec<(String, String)>> {
    let mod_info = ("mod-info".to_string(), config.mod_info.to_string());
    let gsa = ("gsa".to_string(), config.gsa.to_string());
    let mode = (
        "call-recovery".to_string(),
        call_sym_mode_name(config).to_string(),
    );
    let kind = (
        "jump-function".to_string(),
        format!("{:?}", config.jump_function),
    );
    let solver = ("solver".to_string(), format!("{:?}", config.solver));
    let cond = (
        "branch-feasibility".to_string(),
        config.branch_feasibility.to_string(),
    );
    let forward = (
        "interprocedural".to_string(),
        if config.interprocedural {
            format!(
                "{:?}/{:?}/{}",
                config.jump_function, config.solver, config.branch_feasibility
            )
        } else {
            "off".to_string()
        },
    );
    let recovery = (
        "call-recovery".to_string(),
        (call_sym_mode_name(config) != "pessimistic").to_string(),
    );

    let mut out = BTreeMap::new();
    out.insert(SessionPhase::CallGraph.name().to_string(), Vec::new());
    out.insert(SessionPhase::ModRef.name().to_string(), Vec::new());
    out.insert(SessionPhase::Ssa.name().to_string(), vec![mod_info.clone()]);
    out.insert(
        SessionPhase::ReturnJf.name().to_string(),
        vec![
            mod_info.clone(),
            gsa.clone(),
            (
                "return-jump-functions".to_string(),
                config.return_jump_functions.to_string(),
            ),
        ],
    );
    out.insert(
        SessionPhase::SymVals.name().to_string(),
        vec![mod_info.clone(), gsa.clone(), mode.clone()],
    );
    out.insert(
        SessionPhase::ForwardJf.name().to_string(),
        vec![mod_info.clone(), gsa.clone(), mode.clone(), kind.clone()],
    );
    out.insert(
        SessionPhase::Solve.name().to_string(),
        vec![
            mod_info.clone(),
            gsa.clone(),
            mode.clone(),
            kind.clone(),
            solver.clone(),
            cond.clone(),
        ],
    );
    out.insert(
        SessionPhase::Subst.name().to_string(),
        vec![mod_info.clone(), gsa.clone(), mode.clone(), forward],
    );
    out.insert(
        SessionPhase::Dce.name().to_string(),
        vec![
            mod_info.clone(),
            gsa.clone(),
            recovery,
            (
                "complete-propagation".to_string(),
                config.complete_propagation.to_string(),
            ),
        ],
    );
    out.insert(
        SessionPhase::DiskCache.name().to_string(),
        vec![
            kind,
            (
                "return-jump-functions".to_string(),
                config.return_jump_functions.to_string(),
            ),
            mod_info,
            (
                "complete-propagation".to_string(),
                config.complete_propagation.to_string(),
            ),
            (
                "interprocedural".to_string(),
                config.interprocedural.to_string(),
            ),
            (
                "rjf-full-composition".to_string(),
                config.rjf_full_composition.to_string(),
            ),
            solver,
            gsa,
            cond,
        ],
    );
    out
}

fn changed_facets(
    prev: &BTreeMap<String, Vec<(String, String)>>,
    cur: &BTreeMap<String, Vec<(String, String)>>,
    phase: &str,
) -> Vec<String> {
    let empty = Vec::new();
    let a = prev.get(phase).unwrap_or(&empty);
    let b = cur.get(phase).unwrap_or(&empty);
    let am: BTreeMap<&str, &str> = a.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    let bm: BTreeMap<&str, &str> = b.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    let keys: BTreeSet<&str> = am.keys().chain(bm.keys()).copied().collect();
    keys.into_iter()
        .filter(|k| am.get(k) != bm.get(k))
        .map(str::to_string)
        .collect()
}

// ---- the audit ------------------------------------------------------------

/// One phase's incrementality verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseAudit {
    /// The phase audited.
    pub phase: SessionPhase,
    /// Units (procedures, or 1 for program-scoped phases) in scope.
    pub scope_total: u64,
    /// Units whose key components were unchanged.
    pub up_to_date: u64,
    /// Recomputed units: `(unit name, why)`. Program-scoped phases use
    /// the phase name as the unit name.
    pub recomputed: Vec<(String, MissReason)>,
}

/// What the disk-cache consult observed, for the audit's `diskcache`
/// phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskOutcome {
    /// A validated entry was served.
    Hit,
    /// The entry was unusable for the carried reason.
    Miss(MissReason),
}

/// The full incrementality audit of one analysis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncrementalAudit {
    /// True when no previous ledger existed (everything is a first
    /// computation).
    pub first_run: bool,
    /// Procedures whose own IR fingerprint changed since the previous
    /// run (new procedures included), by name.
    pub changed_procs: Vec<String>,
    /// Whether the global table or entry procedure changed.
    pub globals_changed: bool,
    /// Per-phase verdicts, in pipeline order.
    pub phases: Vec<PhaseAudit>,
}

impl IncrementalAudit {
    /// Totals by [`MissReason::label`], across phases.
    pub fn miss_reason_totals(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for phase in &self.phases {
            for (_, reason) in &phase.recomputed {
                *out.entry(reason.label().to_string()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Total recomputed units across phases.
    pub fn total_recomputed(&self) -> u64 {
        self.phases.iter().map(|p| p.recomputed.len() as u64).sum()
    }

    /// Renders the audit for `ipcp why`. `filter` narrows the report to
    /// one phase (matched by name) or one procedure (matched against
    /// recomputed unit names); a phase match shows its full recomputed
    /// list, the unfiltered view truncates long lists.
    pub fn render(&self, filter: Option<&str>) -> String {
        let mut out = String::new();
        if self.first_run {
            out.push_str("first analysis under this label — everything computed fresh\n");
        }
        if !self.changed_procs.is_empty() {
            let _ = writeln!(
                out,
                "changed procedures: {}",
                join_truncated(&self.changed_procs, RENDER_LIMIT)
            );
        }
        if self.globals_changed {
            out.push_str("globals: changed\n");
        }
        let phase_filter =
            filter.and_then(|f| self.phases.iter().any(|p| p.phase.name() == f).then_some(f));
        let proc_filter = match (filter, phase_filter) {
            (Some(f), None) => Some(f),
            _ => None,
        };
        let mut matched = false;
        for phase in &self.phases {
            if let Some(f) = phase_filter {
                if phase.phase.name() != f {
                    continue;
                }
            }
            let entries: Vec<&(String, MissReason)> = match proc_filter {
                Some(f) => phase.recomputed.iter().filter(|(n, _)| n == f).collect(),
                None => phase.recomputed.iter().collect(),
            };
            if proc_filter.is_some() && entries.is_empty() {
                continue;
            }
            matched = true;
            let _ = writeln!(
                out,
                "phase {}: {}/{} up to date, {} recomputed",
                phase.phase.name(),
                phase.up_to_date,
                phase.scope_total,
                phase.recomputed.len()
            );
            let limit = if phase_filter.is_some() || proc_filter.is_some() {
                usize::MAX
            } else {
                RENDER_LIMIT
            };
            for (name, reason) in entries.iter().take(limit) {
                let _ = writeln!(out, "  {}: {}", name, reason.describe());
            }
            if entries.len() > limit {
                let _ = writeln!(out, "  … (+{} more)", entries.len() - limit);
            }
        }
        if let Some(f) = proc_filter {
            if !matched {
                let _ = writeln!(
                    out,
                    "nothing recomputed for `{f}`: every phase it feeds is up to date"
                );
            }
        }
        out
    }
}

/// The disk-cache outcome-key facets that changed since `prev` (the
/// disk-miss classification input).
pub fn outcome_facets_changed(prev: &Ledger, config: &AnalysisConfig) -> Vec<String> {
    changed_facets(
        &prev.facets,
        &render_facets(config),
        SessionPhase::DiskCache.name(),
    )
}

/// The audit of a run fully served from the disk cache: nothing was
/// recomputed, so every phase — including the disk consult itself — is
/// up to date. `procs` is the program's procedure count.
pub fn warm_hit_audit(procs: u64) -> IncrementalAudit {
    let mut phases = Vec::new();
    for phase in PROGRAM_SCOPED {
        phases.push(PhaseAudit {
            phase,
            scope_total: 1,
            up_to_date: 1,
            recomputed: Vec::new(),
        });
    }
    for phase in PROC_SCOPED {
        phases.push(PhaseAudit {
            phase,
            scope_total: procs,
            up_to_date: procs,
            recomputed: Vec::new(),
        });
    }
    phases.push(PhaseAudit {
        phase: SessionPhase::DiskCache,
        scope_total: 1,
        up_to_date: 1,
        recomputed: Vec::new(),
    });
    phases.sort_by_key(|p| SessionPhase::ALL.iter().position(|&q| q == p.phase));
    IncrementalAudit {
        first_run: false,
        changed_procs: Vec::new(),
        globals_changed: false,
        phases,
    }
}

/// Classifies a disk-cache load failure against the previous ledger.
/// `key` is the outcome key that missed; `facets_changed` are the
/// outcome-facet names that differ from the previous run.
pub fn classify_disk_miss(
    prev: Option<&Ledger>,
    miss: &crate::diskcache::LoadMiss,
    key: u64,
    base_changed: bool,
    facets_changed: &[String],
) -> MissReason {
    use crate::diskcache::LoadMiss;
    match miss {
        LoadMiss::Invalid("format version mismatch") | LoadMiss::Invalid("toolchain mismatch") => {
            MissReason::FormatVersionMismatch
        }
        LoadMiss::Invalid(reason) => MissReason::Quarantined {
            reason: (*reason).to_string(),
        },
        LoadMiss::Unreadable => MissReason::Quarantined {
            reason: "unreadable entry".to_string(),
        },
        LoadMiss::Absent => {
            let Some(prev) = prev else {
                return MissReason::FirstComputation;
            };
            if base_changed {
                return MissReason::InputChanged {
                    procs: Vec::new(),
                    globals: false,
                };
            }
            if !facets_changed.is_empty() {
                return MissReason::ConfigFacetChanged {
                    facets: facets_changed.to_vec(),
                };
            }
            if prev.outcome_keys.contains(&key) {
                MissReason::Evicted
            } else {
                MissReason::FirstComputation
            }
        }
    }
}

/// Diffs the previous ledger against the current run's key components
/// and attributes every recomputed unit.
pub fn diff_ledgers(
    prev: Option<&Ledger>,
    current: &Ledger,
    disk: Option<DiskOutcome>,
) -> IncrementalAudit {
    let (changed_procs, globals_changed) = match prev {
        Some(prev) => {
            let pm = prev.proc_map();
            let changed: Vec<String> = current
                .procs
                .iter()
                .filter(|p| pm.get(p.name.as_str()).is_none_or(|q| q.own_fp != p.own_fp))
                .map(|p| p.name.clone())
                .collect();
            (changed, prev.globals_fp != current.globals_fp)
        }
        None => (Vec::new(), false),
    };
    let base_changed = prev.is_some_and(|p| p.base_fp != current.base_fp);
    let input_reason = || MissReason::InputChanged {
        procs: changed_procs.clone(),
        globals: globals_changed,
    };

    let mut phases = Vec::new();
    for phase in PROGRAM_SCOPED {
        let scope_total = 1;
        let mut recomputed = Vec::new();
        match prev {
            None => recomputed.push((phase.name().to_string(), MissReason::FirstComputation)),
            Some(prev) => {
                let facets = changed_facets(&prev.facets, &current.facets, phase.name());
                if base_changed {
                    recomputed.push((phase.name().to_string(), input_reason()));
                } else if !facets.is_empty() {
                    recomputed.push((
                        phase.name().to_string(),
                        MissReason::ConfigFacetChanged { facets },
                    ));
                }
            }
        }
        phases.push(PhaseAudit {
            phase,
            scope_total,
            up_to_date: scope_total - recomputed.len() as u64,
            recomputed,
        });
    }
    for phase in PROC_SCOPED {
        let scope_total = current.procs.len() as u64;
        let mut recomputed = Vec::new();
        match prev {
            None => {
                for p in &current.procs {
                    recomputed.push((p.name.clone(), MissReason::FirstComputation));
                }
            }
            Some(prev) => {
                let pm = prev.proc_map();
                let facets = changed_facets(&prev.facets, &current.facets, phase.name());
                for p in &current.procs {
                    match pm.get(p.name.as_str()) {
                        None => recomputed.push((p.name.clone(), MissReason::FirstComputation)),
                        Some(q) if q.closure_fp != p.closure_fp => {
                            recomputed.push((p.name.clone(), input_reason()));
                        }
                        Some(_) if !facets.is_empty() => {
                            recomputed.push((
                                p.name.clone(),
                                MissReason::ConfigFacetChanged {
                                    facets: facets.clone(),
                                },
                            ));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        phases.push(PhaseAudit {
            phase,
            scope_total,
            up_to_date: scope_total - recomputed.len() as u64,
            recomputed,
        });
    }
    if let Some(disk) = disk {
        let recomputed = match disk {
            DiskOutcome::Hit => Vec::new(),
            DiskOutcome::Miss(reason) => {
                vec![(SessionPhase::DiskCache.name().to_string(), reason)]
            }
        };
        phases.push(PhaseAudit {
            phase: SessionPhase::DiskCache,
            scope_total: 1,
            up_to_date: 1 - recomputed.len() as u64,
            recomputed,
        });
    }
    // Order by pipeline position for stable rendering.
    phases.sort_by_key(|p| SessionPhase::ALL.iter().position(|&q| q == p.phase));
    IncrementalAudit {
        first_run: prev.is_none(),
        changed_procs,
        globals_changed,
        phases,
    }
}

// ---- ledger persistence ---------------------------------------------------

fn label_fp(label: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(label.as_bytes());
    h.finish()
}

/// The on-disk path of `label`'s ledger under `cache_dir`. Lives in an
/// `audit/` subdirectory so the cache's `.art` entry scans (eviction,
/// verify, clear) never see it.
pub fn ledger_path(cache_dir: &Path, label: &str) -> PathBuf {
    cache_dir
        .join("audit")
        .join(format!("{:016x}.ledger", label_fp(label)))
}

/// Loads `label`'s previous ledger. Every failure — absent, torn,
/// version-skewed, undecodable — degrades to `None` (a first run).
pub fn load_ledger(cache_dir: &Path, label: &str) -> Option<Ledger> {
    let bytes = std::fs::read(ledger_path(cache_dir, label)).ok()?;
    let payload = validate_entry(label_fp(label), &bytes).ok()?;
    decode_from_slice::<Ledger>(payload).ok()
}

/// Persists `label`'s ledger via temp-file + atomic rename, framed like
/// a cache entry (magic, version, toolchain, checksum). Failures are
/// swallowed — a lost ledger only costs attribution on the next run.
/// Writes go through plain `std::fs`, never the cache's counters, so
/// [`crate::diskcache::CacheStats`] stays untouched.
pub fn store_ledger(cache_dir: &Path, label: &str, ledger: &Ledger) {
    let path = ledger_path(cache_dir, label);
    let Some(dir) = path.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let image = encode_entry(label_fp(label), &encode_to_vec(ledger));
    let tmp = dir.join(format!(".tmp-ledger.{}", std::process::id()));
    if std::fs::write(&tmp, &image).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return;
    }
    if std::fs::rename(&tmp, &path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(procs: &[(&str, u64, u64)], config: &AnalysisConfig) -> Ledger {
        Ledger {
            base_fp: procs.iter().map(|(_, o, _)| o).sum(),
            globals_fp: 7,
            procs: procs
                .iter()
                .map(|&(name, own_fp, closure_fp)| LedgerProc {
                    name: name.to_string(),
                    own_fp,
                    closure_fp,
                })
                .collect(),
            facets: render_facets(config),
            outcome_keys: Vec::new(),
        }
    }

    #[test]
    fn first_run_attributes_everything_to_first_computation() {
        let config = AnalysisConfig::default();
        let cur = ledger(&[("a", 1, 10), ("b", 2, 20)], &config);
        let audit = diff_ledgers(None, &cur, None);
        assert!(audit.first_run);
        let totals = audit.miss_reason_totals();
        assert_eq!(totals.len(), 1);
        // 4 program-scoped phases + 5 proc-scoped phases × 2 procs.
        assert_eq!(totals["first-computation"], 4 + 10);
    }

    #[test]
    fn unchanged_rerun_is_fully_up_to_date() {
        let config = AnalysisConfig::default();
        let cur = ledger(&[("a", 1, 10), ("b", 2, 20)], &config);
        let audit = diff_ledgers(Some(&cur), &cur.clone(), None);
        assert!(!audit.first_run);
        assert_eq!(audit.total_recomputed(), 0);
        assert!(audit.changed_procs.is_empty());
        for phase in &audit.phases {
            assert_eq!(phase.up_to_date, phase.scope_total);
        }
    }

    #[test]
    fn one_edit_attributes_exactly_the_closure() {
        let config = AnalysisConfig::default();
        let prev = ledger(&[("main", 1, 10), ("f", 2, 20), ("g", 3, 30)], &config);
        // Editing `f` changes f's own fp and the closures of f and its
        // caller `main`; `g` is untouched.
        let cur = ledger(&[("main", 1, 11), ("f", 9, 21), ("g", 3, 30)], &config);
        let audit = diff_ledgers(Some(&prev), &cur, None);
        assert_eq!(audit.changed_procs, vec!["f".to_string()]);
        assert!(!audit.globals_changed);
        let totals = audit.miss_reason_totals();
        assert_eq!(totals.get("first-computation"), None);
        for phase in &audit.phases {
            if PROC_SCOPED.contains(&phase.phase) {
                let names: Vec<&str> = phase.recomputed.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(names, vec!["main", "f"], "{}", phase.phase);
                for (_, reason) in &phase.recomputed {
                    assert_eq!(reason.label(), "input-changed");
                }
            } else {
                assert_eq!(phase.recomputed.len(), 1, "{}", phase.phase);
                assert_eq!(phase.recomputed[0].1.label(), "input-changed");
            }
        }
    }

    #[test]
    fn facet_flip_attributes_only_the_phases_reading_it() {
        let mut config = AnalysisConfig::default();
        let prev = ledger(&[("a", 1, 10)], &config);
        config.gsa = !config.gsa;
        let cur = ledger(&[("a", 1, 10)], &config);
        let audit = diff_ledgers(Some(&prev), &cur, None);
        assert!(audit.changed_procs.is_empty());
        for phase in &audit.phases {
            match phase.phase {
                // SSA and the program-structure phases don't read `gsa`.
                SessionPhase::CallGraph | SessionPhase::ModRef | SessionPhase::Ssa => {
                    assert_eq!(phase.recomputed.len(), 0, "{}", phase.phase);
                }
                _ => {
                    assert_eq!(phase.recomputed.len(), phase.scope_total as usize);
                    for (_, reason) in &phase.recomputed {
                        match reason {
                            MissReason::ConfigFacetChanged { facets } => {
                                assert!(facets.iter().any(|f| f == "gsa"), "{facets:?}");
                            }
                            other => panic!("expected facet change, got {other:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn disk_miss_classification_covers_the_taxonomy() {
        use crate::diskcache::LoadMiss;
        let config = AnalysisConfig::default();
        let mut prev = ledger(&[("a", 1, 10)], &config);
        prev.remember_outcome_key(42);
        assert_eq!(
            classify_disk_miss(None, &LoadMiss::Absent, 42, false, &[]),
            MissReason::FirstComputation
        );
        assert_eq!(
            classify_disk_miss(Some(&prev), &LoadMiss::Absent, 42, false, &[]),
            MissReason::Evicted
        );
        assert_eq!(
            classify_disk_miss(Some(&prev), &LoadMiss::Absent, 43, false, &[]),
            MissReason::FirstComputation
        );
        assert!(matches!(
            classify_disk_miss(Some(&prev), &LoadMiss::Absent, 43, true, &[]),
            MissReason::InputChanged { .. }
        ));
        assert!(matches!(
            classify_disk_miss(
                Some(&prev),
                &LoadMiss::Absent,
                43,
                false,
                &["solver".to_string()]
            ),
            MissReason::ConfigFacetChanged { .. }
        ));
        assert_eq!(
            classify_disk_miss(
                Some(&prev),
                &LoadMiss::Invalid("format version mismatch"),
                42,
                false,
                &[]
            ),
            MissReason::FormatVersionMismatch
        );
        assert_eq!(
            classify_disk_miss(
                Some(&prev),
                &LoadMiss::Invalid("checksum mismatch"),
                42,
                false,
                &[]
            ),
            MissReason::Quarantined {
                reason: "checksum mismatch".to_string()
            }
        );
    }

    #[test]
    fn ledger_roundtrips_through_disk_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("ipcp-audit-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = AnalysisConfig::default();
        let mut l = ledger(&[("a", 1, 10), ("b", 2, 20)], &config);
        l.remember_outcome_key(99);
        store_ledger(&dir, "prog.mf", &l);
        assert_eq!(load_ledger(&dir, "prog.mf"), Some(l.clone()));
        assert_eq!(load_ledger(&dir, "other.mf"), None);
        // Corrupt the file: the load degrades to a first run.
        let path = ledger_path(&dir, "prog.mf");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_ledger(&dir, "prog.mf"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_key_memory_is_bounded() {
        let mut l = Ledger::default();
        for k in 0..(MAX_OUTCOME_KEYS as u64 + 100) {
            l.remember_outcome_key(k);
        }
        assert_eq!(l.outcome_keys.len(), MAX_OUTCOME_KEYS);
        assert_eq!(
            *l.outcome_keys.last().unwrap(),
            MAX_OUTCOME_KEYS as u64 + 99
        );
        l.remember_outcome_key(MAX_OUTCOME_KEYS as u64 + 99);
        assert_eq!(l.outcome_keys.len(), MAX_OUTCOME_KEYS);
    }

    #[test]
    fn render_filters_by_phase_and_by_proc() {
        let config = AnalysisConfig::default();
        let prev = ledger(&[("main", 1, 10), ("f", 2, 20), ("g", 3, 30)], &config);
        let cur = ledger(&[("main", 1, 11), ("f", 9, 21), ("g", 3, 30)], &config);
        let audit = diff_ledgers(Some(&prev), &cur, None);
        let full = audit.render(None);
        assert!(full.contains("changed procedures: f"));
        assert!(full.contains("phase ssa: 1/3 up to date, 2 recomputed"));
        let ssa = audit.render(Some("ssa"));
        assert!(ssa.contains("phase ssa"));
        assert!(!ssa.contains("phase solve"));
        let f = audit.render(Some("f"));
        assert!(f.contains("f: input changed (procs: f)"));
        assert!(!f.contains("main: "));
        let g = audit.render(Some("g"));
        assert!(g.contains("nothing recomputed for `g`"));
    }
}
