//! Whole-program subscript classification under a chosen analysis
//! configuration — the dependence-analysis consumer from the paper's
//! introduction (Shen–Li–Yew).
//!
//! [`subscript_counts`] runs the configured interprocedural analysis and
//! classifies every array subscript in call-graph-reachable code with
//! [`ipcp_analysis::subscripts`]. Comparing the intraprocedural baseline
//! against a full configuration shows how many previously *nonlinear*
//! subscripts become linear or constant once interprocedural constants
//! are known.

use crate::driver::AnalysisConfig;
use crate::forward::build_forward_jfs_with;
use crate::retjf::{build_return_jfs_with, ReturnJumpFns, RjfConstEval, RjfLattice};
use crate::solver::{entry_env_of, solve};
use ipcp_analysis::sccp::{bottom_entry, sccp, CallLattice, PessimisticCalls, SccpConfig};
use ipcp_analysis::subscripts::{count_subscripts, SubscriptCounts};
use ipcp_analysis::symeval::{CallSymbolics, NoCallSymbolics, SymEvalOptions};
use ipcp_analysis::{augment_global_vars, compute_modref, CallGraph, ModKills};
use ipcp_ir::Program;
use ipcp_ssa::{build_ssa, KillOracle, WorstCaseKills};

/// Classifies every subscript in the program under `config`.
pub fn subscript_counts(program: &Program, config: &AnalysisConfig) -> SubscriptCounts {
    let mut program = program.clone();
    let cg = CallGraph::new(&program);
    let modref = compute_modref(&program, &cg);
    augment_global_vars(&mut program, &modref);
    let cg = CallGraph::new(&program);
    let sym_options = SymEvalOptions {
        gated_phis: config.gsa,
    };

    let mod_kills;
    let kills: &dyn KillOracle = if config.mod_info {
        mod_kills = ModKills::new(&program, &modref);
        &mod_kills
    } else {
        &WorstCaseKills
    };
    let rjfs = if config.return_jump_functions {
        build_return_jfs_with(&program, &cg, kills, sym_options)
    } else {
        ReturnJumpFns::empty(program.procs.len())
    };
    let rjf_recovery = config.return_jump_functions && config.mod_info;
    let const_eval = RjfConstEval { rjfs: &rjfs };
    let vals = if config.interprocedural {
        let call_sym: &dyn CallSymbolics = if rjf_recovery {
            &const_eval
        } else {
            &NoCallSymbolics
        };
        let jfs = build_forward_jfs_with(
            &program,
            &cg,
            &modref,
            config.jump_function,
            kills,
            call_sym,
            sym_options,
        );
        Some(solve(&program, &cg, &modref, &jfs))
    } else {
        None
    };
    let rjf_lattice = RjfLattice { rjfs: &rjfs };
    let calls: &dyn CallLattice = if rjf_recovery {
        &rjf_lattice
    } else {
        &PessimisticCalls
    };

    let mut total = SubscriptCounts::default();
    for pid in program.proc_ids() {
        if !cg.is_reachable(pid) {
            continue;
        }
        let proc = program.proc(pid);
        let ssa = build_ssa(&program, proc, kills);
        let result = match vals.as_ref() {
            Some(v) => {
                let env = entry_env_of(&program, pid, v);
                sccp(
                    proc,
                    &ssa,
                    &SccpConfig {
                        entry_env: &env,
                        calls,
                    },
                )
            }
            None => sccp(
                proc,
                &ssa,
                &SccpConfig {
                    entry_env: &bottom_entry,
                    calls,
                },
            ),
        };
        total.absorb(count_subscripts(proc, &ssa, &result));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::compile_to_ir;

    /// Strided kernels whose strides arrive interprocedurally — the
    /// Shen–Li–Yew shape.
    const STRIDED: &str = "
global width
proc setup()
  width = 10
end
proc row(v(), stride, base)
  do i = 1, 10
    v(base + stride * i) = i
  end
end
proc grid(v())
  do i = 1, 9
    do j = 1, 9
      x = v(width * i + j)
    end
  end
end
main
  integer m(200)
  call setup()
  call row(m, 2, 100)
  call row(m, 2, 100)
  call grid(m)
end
";

    #[test]
    fn interprocedural_constants_linearize_subscripts() {
        let program = compile_to_ir(STRIDED).unwrap();
        let baseline = subscript_counts(&program, &AnalysisConfig::intraprocedural_baseline());
        let full = subscript_counts(&program, &AnalysisConfig::default());
        // Three subscripts total: row's store, grid's load, main has none.
        assert_eq!(baseline.total(), 2);
        assert_eq!(full.total(), 2);
        // Baseline: both strides unknown → nonlinear.
        assert_eq!(baseline.nonlinear, 2, "{baseline:?}");
        // With interprocedural constants: stride = 2, width = 10 → linear.
        assert_eq!(full.nonlinear, 0, "{full:?}");
        assert_eq!(full.linear, 2, "{full:?}");
    }

    #[test]
    fn return_jump_functions_matter_for_grid() {
        let program = compile_to_ir(STRIDED).unwrap();
        let no_rjf = subscript_counts(
            &program,
            &AnalysisConfig {
                return_jump_functions: false,
                ..AnalysisConfig::default()
            },
        );
        // Without return JFs, width stays unknown → grid's load nonlinear;
        // row's stride is a direct literal, still linear.
        assert_eq!(no_rjf.linear, 1, "{no_rjf:?}");
        assert_eq!(no_rjf.nonlinear, 1, "{no_rjf:?}");
    }
}
