//! Crash-safe persistent backing store for the session artifact cache.
//!
//! The in-memory [`crate::session::ArtifactStore`] dies with the
//! process; this module gives analysis outcomes a life across runs. The
//! design goal is *robustness before speed*: version skew, torn writes,
//! bit rot, a full disk, permission changes, and concurrent writers must
//! all degrade to a cold recompute — never a wrong result, never a
//! panic.
//!
//! ## On-disk format
//!
//! One file per entry, `<key:016x>.art`, laid out as
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"IPCPART1"
//!      8     4  format version (u32 LE)
//!     12     8  toolchain fingerprint (u64 LE)
//!     20     8  entry key (u64 LE)
//!     28     8  payload length (u64 LE)
//!     36     8  FNV-1a checksum over the payload (u64 LE)
//!     44     —  payload ([`Wire`]-encoded artifact)
//! ```
//!
//! Loads validate every header field *and* the checksum; any mismatch
//! moves the file into `quarantine/` (for postmortem inspection),
//! records the event in the cache's [`RobustnessReport`], and reports a
//! miss so the caller recomputes from scratch.
//!
//! ## Crash safety and concurrency
//!
//! Writes go to a process-unique temp file followed by an atomic rename,
//! so a reader never observes a half-written entry even if the writer
//! dies mid-write. Mutations additionally serialize on an advisory
//! `.lock` file (created with `O_EXCL`, holding the owner's PID); locks
//! older than [`LOCK_STALE_SECS`] are presumed dead and broken. A store
//! that cannot acquire the lock or complete its write simply skips
//! caching — persistent-cache failures are *never* allowed to fail the
//! analysis.
//!
//! ## Eviction
//!
//! After each successful store the cache enforces an optional byte
//! budget by deleting the least-recently-used entries (mtime order; a
//! successful load refreshes an entry's mtime).
//!
//! All I/O funnels through the [`CacheIo`] trait so tests can wrap the
//! real filesystem with an [`IoFaultInjector`] and prove every fault
//! path degrades gracefully.

use crate::driver::{AnalysisConfig, AnalysisOutcome, PhaseStats};
use crate::subst::SubstitutionCounts;
use ipcp_analysis::budget::{IoFaultInjector, IoFaultKind, IoOp, RobustnessReport};
use ipcp_analysis::modref::Slot;
use ipcp_ir::codec::{ByteReader, ByteWriter, Wire, WireError};
use ipcp_ir::fingerprint::{combine, fingerprint_debug, Fnv1a};
use ipcp_ir::Program;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// First 8 bytes of every entry file.
pub const MAGIC: [u8; 8] = *b"IPCPART1";

/// Bumped whenever the entry layout or any [`Wire`] encoding changes;
/// old entries are quarantined, not misread. Version 2: the generic
/// value-context engine (pruned_call_edges in [`PhaseStats`], the
/// `branch_feasibility` key facet) — pre-framework artifacts must not
/// be silently reused.
pub const FORMAT_VERSION: u32 = 2;

/// Fixed header size preceding the payload.
pub const HEADER_LEN: usize = 44;

/// Advisory locks older than this are presumed to belong to a dead
/// process and are broken.
pub const LOCK_STALE_SECS: u64 = 10;

/// Fingerprint of everything that invalidates cached artifacts wholesale:
/// the entry format version and the package version that wrote them.
pub fn toolchain_fingerprint() -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(u64::from(FORMAT_VERSION));
    h.write_bytes(env!("CARGO_PKG_VERSION").as_bytes());
    h.finish()
}

/// The cache key for a full analysis outcome: the program fingerprint
/// combined with every result-affecting configuration facet. `jobs` and
/// fuel take no part — parallelism is bit-identical by design and
/// metered runs are never cached.
pub fn outcome_key(base_fp: u64, config: &AnalysisConfig) -> u64 {
    let facets = (
        config.jump_function,
        config.return_jump_functions,
        config.mod_info,
        config.complete_propagation,
        config.interprocedural,
        config.rjf_full_composition,
        config.solver,
        config.gsa,
        config.branch_feasibility,
    );
    combine([base_fp, fingerprint_debug(&facets)])
}

// ---- Wire impls for the persisted artifact --------------------------------

impl Wire for SubstitutionCounts {
    fn encode(&self, w: &mut ByteWriter) {
        self.per_proc.encode(w);
        self.total.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(SubstitutionCounts {
            per_proc: Vec::<usize>::decode(r)?,
            total: usize::decode(r)?,
        })
    }
}

impl Wire for PhaseStats {
    fn encode(&self, w: &mut ByteWriter) {
        self.return_jfs.encode(w);
        self.forward_jfs.encode(w);
        self.useful_forward_jfs.encode(w);
        self.solver_iterations.encode(w);
        self.dce_rounds.encode(w);
        self.pruned_call_edges.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(PhaseStats {
            return_jfs: usize::decode(r)?,
            forward_jfs: usize::decode(r)?,
            useful_forward_jfs: usize::decode(r)?,
            solver_iterations: usize::decode(r)?,
            dce_rounds: usize::decode(r)?,
            pruned_call_edges: usize::decode(r)?,
        })
    }
}

impl Wire for AnalysisOutcome {
    fn encode(&self, w: &mut ByteWriter) {
        self.program.encode(w);
        self.constants.encode(w);
        self.substitutions.encode(w);
        self.stats.encode(w);
        self.robustness.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(AnalysisOutcome {
            program: Program::decode(r)?,
            constants: Vec::<BTreeMap<Slot, i64>>::decode(r)?,
            substitutions: SubstitutionCounts::decode(r)?,
            stats: PhaseStats::decode(r)?,
            robustness: RobustnessReport::decode(r)?,
        })
    }
}

// ---- entry framing --------------------------------------------------------

fn checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(payload);
    h.finish()
}

/// Frames `payload` into a complete entry file image.
pub fn encode_entry(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&toolchain_fingerprint().to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn read_u64_at(bytes: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Validates a whole entry file image against its expected `key` and
/// returns the payload slice.
///
/// # Errors
///
/// A stable human-readable reason — the quarantine classification.
pub fn validate_entry(key: u64, bytes: &[u8]) -> Result<&[u8], &'static str> {
    if bytes.len() < HEADER_LEN {
        return Err("truncated header");
    }
    if bytes[..8] != MAGIC {
        return Err("bad magic");
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[8..12]);
    if u32::from_le_bytes(v) != FORMAT_VERSION {
        return Err("format version mismatch");
    }
    if read_u64_at(bytes, 12) != toolchain_fingerprint() {
        return Err("toolchain mismatch");
    }
    if read_u64_at(bytes, 20) != key {
        return Err("key mismatch");
    }
    let payload = &bytes[HEADER_LEN..];
    if read_u64_at(bytes, 28) != payload.len() as u64 {
        return Err("length mismatch");
    }
    if read_u64_at(bytes, 36) != checksum(payload) {
        return Err("checksum mismatch");
    }
    Ok(payload)
}

// ---- pluggable I/O --------------------------------------------------------

/// The filesystem surface the cache touches, abstracted for fault
/// injection. Implementations must be shareable across analysis workers.
pub trait CacheIo: Send + Sync {
    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// The underlying I/O error (`NotFound` is the common miss case).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes a whole file (the temp half of temp+rename).
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` over `to`.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Creates the advisory lock file, failing if it already exists.
    ///
    /// # Errors
    ///
    /// `AlreadyExists` when another process holds the lock.
    fn create_lock(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default)]
pub struct RealIo;

impl CacheIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_lock(&self, path: &Path) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        write!(f, "{}", std::process::id())
    }
}

/// The real filesystem wrapped with a deterministic [`IoFaultInjector`]:
/// at the injector's trigger point the configured fault strikes exactly
/// once.
pub struct FaultyIo {
    inner: RealIo,
    injector: Arc<IoFaultInjector>,
}

impl FaultyIo {
    /// Wraps the real filesystem with `injector`.
    pub fn new(injector: Arc<IoFaultInjector>) -> Self {
        FaultyIo {
            inner: RealIo,
            injector,
        }
    }
}

impl CacheIo for FaultyIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.injector.should_fire(IoOp::Write) {
            return match self.injector.kind() {
                // A crash mid-write: only a prefix reaches the disk, and
                // the write call itself appears to succeed.
                IoFaultKind::TornWrite => self.inner.write(path, &bytes[..bytes.len() / 2]),
                // The file lands whole, then loses its tail.
                IoFaultKind::Truncate => {
                    self.inner.write(path, bytes)?;
                    let keep = bytes.len().saturating_sub(8);
                    self.inner.write(path, &bytes[..keep])
                }
                // Media bit rot: one bit of the payload flips silently.
                IoFaultKind::BitFlip => {
                    let mut corrupt = bytes.to_vec();
                    if let Some(last) = corrupt.last_mut() {
                        *last ^= 0x01;
                    }
                    self.inner.write(path, &corrupt)
                }
                IoFaultKind::Enospc => Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected ENOSPC",
                )),
                IoFaultKind::Eacces => Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    "injected EACCES",
                )),
                IoFaultKind::RenameFail => unreachable!("rename faults target IoOp::Rename"),
            };
        }
        self.inner.write(path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.injector.should_fire(IoOp::Rename) {
            return Err(io::Error::other("injected rename failure"));
        }
        self.inner.rename(from, to)
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }
    fn create_lock(&self, path: &Path) -> io::Result<()> {
        self.inner.create_lock(path)
    }
}

// ---- advisory lock --------------------------------------------------------

struct DirLock<'a> {
    io: &'a dyn CacheIo,
    path: PathBuf,
}

/// The lock file's mtime, if it can be observed at all.
fn lock_mtime(path: &Path) -> Option<std::time::SystemTime> {
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

/// Whether a lock with this mtime is past the staleness horizon.
fn lock_is_stale(mtime: Option<std::time::SystemTime>) -> bool {
    mtime
        .and_then(|m| m.elapsed().ok())
        .is_some_and(|age| age.as_secs() >= LOCK_STALE_SECS)
}

impl<'a> DirLock<'a> {
    /// Acquires the advisory lock, breaking stale locks and retrying
    /// briefly against live contenders.
    fn acquire(io: &'a dyn CacheIo, dir: &Path) -> io::Result<Self> {
        let path = dir.join(".lock");
        for attempt in 0..50 {
            match io.create_lock(&path) {
                Ok(()) => return Ok(DirLock { io, path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let judged = lock_mtime(&path);
                    if lock_is_stale(judged) {
                        // Presumed-dead owner: break the lock under the
                        // break mutex, then loop straight back to the
                        // O_EXCL create so exactly one breaker wins.
                        Self::break_stale(io, dir, &path, judged);
                    } else if attempt == 49 {
                        return Err(e);
                    } else {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            "cache lock contention",
        ))
    }

    /// Breaks a `.lock` judged stale at mtime `judged`. Unlink + O_EXCL
    /// create is not atomic, so a naive break lets two contenders both
    /// unlink and one of them delete a lock a third party just
    /// legitimately re-created. All unlinks of `.lock` therefore
    /// serialize on a second O_EXCL file, `.lock.break`, and the winner
    /// re-verifies — while holding the break mutex — that the lock it is
    /// about to unlink is byte-for-byte the one it judged stale: same
    /// mtime, still past the horizon. A fresh lock can only appear
    /// *after* an unlink, and unlinks only happen inside the mutex, so
    /// no live owner's lock is ever removed.
    fn break_stale(
        io: &dyn CacheIo,
        dir: &Path,
        path: &Path,
        judged: Option<std::time::SystemTime>,
    ) {
        let breaker = dir.join(".lock.break");
        match io.create_lock(&breaker) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                // The break mutex is held only across two stats and an
                // unlink — never across blocking work — so a stale one
                // belongs to a breaker that died mid-break.
                if lock_is_stale(lock_mtime(&breaker)) {
                    let _ = io.remove(&breaker);
                }
                // Someone else is (or was) breaking; let them finish.
                std::thread::sleep(Duration::from_millis(2));
                return;
            }
            Err(_) => return,
        }
        let current = lock_mtime(path);
        if current == judged && lock_is_stale(current) {
            let _ = io.remove(path);
        }
        let _ = io.remove(&breaker);
    }

    /// Refreshes the lock's mtime, marking the owner as alive. Long
    /// multi-entry operations (eviction sweeps, `clear`) call this
    /// periodically so a legitimate holder working past
    /// [`LOCK_STALE_SECS`] is not presumed dead and broken mid-flight.
    fn refresh(&self) {
        touch(&self.path);
    }
}

impl Drop for DirLock<'_> {
    fn drop(&mut self) {
        let _ = self.io.remove(&self.path);
    }
}

// ---- stats ----------------------------------------------------------------

/// Runtime counters for one cache handle's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries loaded and validated successfully.
    pub hits: u64,
    /// Loads that found no (usable) entry.
    pub misses: u64,
    /// Entries persisted successfully.
    pub writes: u64,
    /// Stores that failed (lock, write, or rename) and were skipped.
    pub write_errors: u64,
    /// Entries moved to `quarantine/` after failing validation.
    pub quarantined: u64,
    /// Entries deleted by the LRU byte-budget pass.
    pub evicted: u64,
}

impl CacheStats {
    /// Renders the counters as a JSON object (hand-rolled; the workspace
    /// carries no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"writes\":{},\"write_errors\":{},\
             \"quarantined\":{},\"evicted\":{}}}",
            self.hits, self.misses, self.writes, self.write_errors, self.quarantined, self.evicted
        )
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {}, misses {}, writes {}, write errors {}, quarantined {}, evicted {}",
            self.hits, self.misses, self.writes, self.write_errors, self.quarantined, self.evicted
        )
    }
}

/// Why a [`DiskCache::load_classified`] call came up empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMiss {
    /// No entry file exists for the key.
    Absent,
    /// The entry file exists but could not be read (permissions, I/O).
    Unreadable,
    /// The entry failed validation and was quarantined; carries the
    /// stable quarantine reason (e.g. `"checksum mismatch"`).
    Invalid(&'static str),
}

/// What `verify` found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Entries that validated end-to-end.
    pub valid: u64,
    /// Entries that failed validation and were quarantined.
    pub quarantined: u64,
}

// ---- the cache ------------------------------------------------------------

/// A persistent, crash-safe artifact cache rooted at one directory.
///
/// Shared across analysis workers behind an [`Arc`]; every failure mode
/// degrades to a miss (cold recompute) and is counted, never propagated.
pub struct DiskCache {
    dir: PathBuf,
    max_bytes: Option<u64>,
    io: Box<dyn CacheIo>,
    stats: Mutex<CacheStats>,
    anomalies: Mutex<BTreeMap<String, u64>>,
}

impl fmt::Debug for DiskCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskCache")
            .field("dir", &self.dir)
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// When the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::with_io(dir, Box::new(RealIo))
    }

    /// Opens a cache whose filesystem accesses go through `io` — the
    /// fault-injection entry point.
    ///
    /// # Errors
    ///
    /// When the directory cannot be created.
    pub fn with_io(dir: impl Into<PathBuf>, io: Box<dyn CacheIo>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            max_bytes: None,
            io,
            stats: Mutex::new(CacheStats::default()),
            anomalies: Mutex::new(BTreeMap::new()),
        })
    }

    /// Caps the cache at `max_bytes` of entry data, enforced by LRU
    /// eviction after each store.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.art"))
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    fn note_anomaly(&self, what: &str) {
        let mut anomalies = self.anomalies.lock().expect("cache anomaly lock");
        *anomalies.entry(what.to_string()).or_insert(0) += 1;
    }

    /// Moves `path` into `quarantine/`, falling back to deletion when
    /// even the move fails; the entry must not be loadable again either
    /// way.
    fn quarantine_file(&self, path: &Path, reason: &str) {
        let qdir = self.quarantine_dir();
        let moved = std::fs::create_dir_all(&qdir).is_ok()
            && path
                .file_name()
                .is_some_and(|name| self.io.rename(path, &qdir.join(name)).is_ok());
        if !moved {
            let _ = self.io.remove(path);
        }
        self.stats.lock().expect("cache stats lock").quarantined += 1;
        self.note_anomaly(&format!("diskcache: quarantined ({reason})"));
    }

    /// Quarantines `key`'s entry for a reason detected *above* the
    /// framing layer (e.g. the payload passed its checksum but failed to
    /// decode — format skew within one format version).
    pub fn quarantine_key(&self, key: u64, reason: &str) {
        self.quarantine_file(&self.entry_path(key), reason);
    }

    /// Loads and validates `key`'s payload. Any failure — missing file,
    /// unreadable file, header or checksum mismatch — is a miss; corrupt
    /// entries are quarantined on the way out.
    pub fn load(&self, key: u64) -> Option<Vec<u8>> {
        self.load_classified(key).ok()
    }

    /// Like [`DiskCache::load`], but a miss reports *why* the entry was
    /// unusable so callers can attribute the recomputation. Stats and
    /// quarantine side effects are identical to `load`.
    ///
    /// # Errors
    ///
    /// The [`LoadMiss`] classification of the failed load.
    pub fn load_classified(&self, key: u64) -> Result<Vec<u8>, LoadMiss> {
        let path = self.entry_path(key);
        let bytes = match self.io.read(&path) {
            Ok(bytes) => bytes,
            Err(e) => {
                let miss = if e.kind() == io::ErrorKind::NotFound {
                    LoadMiss::Absent
                } else {
                    self.note_anomaly("diskcache: unreadable entry");
                    LoadMiss::Unreadable
                };
                self.stats.lock().expect("cache stats lock").misses += 1;
                return Err(miss);
            }
        };
        match validate_entry(key, &bytes) {
            Ok(payload) => {
                let payload = payload.to_vec();
                touch(&path);
                self.stats.lock().expect("cache stats lock").hits += 1;
                Ok(payload)
            }
            Err(reason) => {
                self.quarantine_file(&path, reason);
                self.stats.lock().expect("cache stats lock").misses += 1;
                Err(LoadMiss::Invalid(reason))
            }
        }
    }

    /// Persists `payload` under `key` via temp-file + atomic rename,
    /// holding the advisory directory lock. Failures are counted and
    /// swallowed — the analysis result is already in hand; the cache
    /// merely failed to remember it.
    pub fn store(&self, key: u64, payload: &[u8]) {
        let lock = match DirLock::acquire(self.io.as_ref(), &self.dir) {
            Ok(lock) => lock,
            Err(e) => {
                self.stats.lock().expect("cache stats lock").write_errors += 1;
                self.note_anomaly(&format!("diskcache: lock failed ({})", e.kind()));
                return;
            }
        };
        let tmp = self
            .dir
            .join(format!(".tmp-{key:016x}.{}", std::process::id()));
        let image = encode_entry(key, payload);
        if let Err(e) = self.io.write(&tmp, &image) {
            let _ = self.io.remove(&tmp);
            self.stats.lock().expect("cache stats lock").write_errors += 1;
            self.note_anomaly(&format!("diskcache: write failed ({})", e.kind()));
            return;
        }
        if let Err(e) = self.io.rename(&tmp, &self.entry_path(key)) {
            let _ = self.io.remove(&tmp);
            self.stats.lock().expect("cache stats lock").write_errors += 1;
            self.note_anomaly(&format!("diskcache: rename failed ({})", e.kind()));
            return;
        }
        self.stats.lock().expect("cache stats lock").writes += 1;
        self.evict_over_budget(&lock);
    }

    /// Deletes least-recently-used entries until the byte budget holds.
    /// Only canonical payload entries (see [`payload_key`]) are counted
    /// or deleted; audit ledgers, quarantined files, the advisory lock,
    /// and anything else sharing the directory are out of scope.
    fn evict_over_budget(&self, lock: &DirLock<'_>) {
        self.sweep_dead_temps();
        let Some(max) = self.max_bytes else { return };
        let mut entries = self.list_entries();
        let mut total: u64 = entries.iter().map(|e| e.size).sum();
        // Oldest mtime first; name breaks ties deterministically.
        entries.sort_by(|a, b| (a.mtime, &a.path).cmp(&(b.mtime, &b.path)));
        let mut evicted = 0;
        for (i, entry) in entries.iter().enumerate() {
            if total <= max {
                break;
            }
            // A sweep over many entries can outlast the staleness
            // horizon; keep marking the lock alive so contenders don't
            // presume us dead and break it mid-sweep.
            if i % 64 == 0 {
                lock.refresh();
            }
            if self.io.remove(&entry.path).is_ok() {
                total -= entry.size;
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.stats.lock().expect("cache stats lock").evicted += evicted;
        }
    }

    /// Deletes `.tmp-*` files older than the staleness horizon: a
    /// crashed writer's torn temp is never published, but left alone it
    /// would consume disk forever while staying invisible to the byte
    /// budget. Fresh temps belong to in-flight writers and are kept.
    fn sweep_dead_temps(&self) {
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for dirent in read.flatten() {
            let name = dirent.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with(".tmp-") {
                continue;
            }
            let dead = dirent
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| mtime.elapsed().ok())
                .is_some_and(|age| age.as_secs() >= LOCK_STALE_SECS);
            if dead {
                let _ = self.io.remove(&dirent.path());
            }
        }
    }

    fn list_entries(&self) -> Vec<EntryMeta> {
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for dirent in read.flatten() {
            let path = dirent.path();
            if payload_key(&path).is_none() {
                continue;
            }
            let Ok(meta) = dirent.metadata() else {
                continue;
            };
            if !meta.is_file() {
                continue;
            }
            out.push(EntryMeta {
                mtime: meta.modified().ok(),
                size: meta.len(),
                path,
            });
        }
        out
    }

    /// Number of entry files currently on disk.
    pub fn entry_count(&self) -> u64 {
        self.list_entries().len() as u64
    }

    /// Total bytes of entry files currently on disk.
    pub fn total_bytes(&self) -> u64 {
        self.list_entries().iter().map(|e| e.size).sum()
    }

    /// Number of files sitting in `quarantine/`.
    pub fn quarantine_count(&self) -> u64 {
        std::fs::read_dir(self.quarantine_dir())
            .map(|read| read.flatten().count() as u64)
            .unwrap_or(0)
    }

    /// Validates every entry on disk, quarantining the ones that fail.
    pub fn verify(&self) -> VerifyOutcome {
        let mut outcome = VerifyOutcome::default();
        for entry in self.list_entries() {
            let key = entry
                .path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok());
            let verdict = match (key, self.io.read(&entry.path)) {
                (Some(key), Ok(bytes)) => validate_entry(key, &bytes).map(|_| ()),
                (None, _) => Err("unparsable entry name"),
                (_, Err(_)) => Err("unreadable entry"),
            };
            match verdict {
                Ok(()) => outcome.valid += 1,
                Err(reason) => {
                    self.quarantine_file(&entry.path, reason);
                    outcome.quarantined += 1;
                }
            }
        }
        outcome
    }

    /// Removes every entry and quarantined file; returns how many files
    /// were deleted.
    pub fn clear(&self) -> u64 {
        let lock = DirLock::acquire(self.io.as_ref(), &self.dir).ok();
        let mut removed = 0;
        for (i, entry) in self.list_entries().iter().enumerate() {
            if i % 64 == 0 {
                if let Some(lock) = &lock {
                    lock.refresh();
                }
            }
            if self.io.remove(&entry.path).is_ok() {
                removed += 1;
            }
        }
        if let Ok(read) = std::fs::read_dir(self.quarantine_dir()) {
            for dirent in read.flatten() {
                if self.io.remove(&dirent.path()).is_ok() {
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Snapshot of this handle's runtime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats.lock().expect("cache stats lock").clone()
    }

    /// The cache's own robustness ledger: every quarantine, failed
    /// write, and unreadable entry, as anomaly counts. Kept separate
    /// from the analysis outcome's report so warm results stay
    /// bit-identical to cold.
    pub fn robustness(&self) -> RobustnessReport {
        RobustnessReport {
            anomalies: self.anomalies.lock().expect("cache anomaly lock").clone(),
            ..RobustnessReport::default()
        }
    }
}

struct EntryMeta {
    mtime: Option<std::time::SystemTime>,
    size: u64,
    path: PathBuf,
}

/// The key of a canonical payload entry — a file named exactly
/// `<key:016x>.art` — or `None` for everything else. This is the scope
/// test for eviction and entry listings: the advisory `.lock`, the
/// `audit/` ledgers, `quarantine/`, in-flight `.tmp-*` files, and any
/// foreign file a user drops next to the cache all fall outside it.
fn payload_key(path: &Path) -> Option<u64> {
    if path.extension().and_then(|e| e.to_str()) != Some("art") {
        return None;
    }
    let stem = path.file_stem()?.to_str()?;
    if stem.len() != 16 || !stem.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

/// Best-effort LRU touch: refresh `path`'s mtime so eviction sees it as
/// recently used. Failures are ignored — staler-than-real mtimes only
/// make eviction marginally less precise.
fn touch(path: &Path) {
    if let Ok(f) = std::fs::File::options().append(true).open(path) {
        let now = std::time::SystemTime::now();
        let _ = f.set_times(std::fs::FileTimes::new().set_modified(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::codec::{decode_from_slice, encode_to_vec};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ipcp-diskcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store(7, b"hello artifact");
        assert_eq!(cache.load(7).as_deref(), Some(&b"hello artifact"[..]));
        let stats = cache.stats();
        assert_eq!((stats.writes, stats.hits, stats.misses), (1, 1, 0));
        assert!(cache.robustness().is_clean());
        // A fresh handle over the same directory sees the entry (the
        // whole point of persistence).
        let reopened = DiskCache::open(&dir).unwrap();
        assert_eq!(reopened.load(7).as_deref(), Some(&b"hello artifact"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_entry_is_a_plain_miss() {
        let dir = temp_dir("miss");
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.load(1), None);
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.robustness().is_clean(), "a miss is not an anomaly");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_quarantine_and_miss() {
        for (tag, mutate) in [
            (
                "truncate",
                Box::new(|b: &mut Vec<u8>| b.truncate(b.len() - 4)) as Box<dyn Fn(&mut Vec<u8>)>,
            ),
            (
                "bitflip",
                Box::new(|b: &mut Vec<u8>| {
                    let last = b.len() - 1;
                    b[last] ^= 0x80;
                }),
            ),
            ("magic", Box::new(|b: &mut Vec<u8>| b[0] = b'X')),
            ("version", Box::new(|b: &mut Vec<u8>| b[8] ^= 0xff)),
            ("header", Box::new(|b: &mut Vec<u8>| b.truncate(10))),
        ] {
            let dir = temp_dir(&format!("corrupt-{tag}"));
            let cache = DiskCache::open(&dir).unwrap();
            cache.store(3, b"payload bytes");
            let path = dir.join(format!("{:016x}.art", 3));
            let mut bytes = std::fs::read(&path).unwrap();
            mutate(&mut bytes);
            std::fs::write(&path, &bytes).unwrap();

            assert_eq!(cache.load(3), None, "{tag}: corrupt entry must miss");
            assert!(!path.exists(), "{tag}: entry must leave the cache dir");
            assert_eq!(cache.stats().quarantined, 1, "{tag}");
            assert_eq!(cache.quarantine_count(), 1, "{tag}");
            let report = cache.robustness();
            assert_eq!(report.total_anomalies(), 1, "{tag}");
            // Re-load after quarantine is a plain miss, not a re-quarantine.
            assert_eq!(cache.load(3), None);
            assert_eq!(cache.stats().quarantined, 1, "{tag}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn wrong_key_content_is_quarantined() {
        let dir = temp_dir("wrongkey");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store(5, b"five");
        // Copy entry 5's bytes over entry 9's name: key field mismatch.
        let bytes = std::fs::read(dir.join(format!("{:016x}.art", 5))).unwrap();
        std::fs::write(dir.join(format!("{:016x}.art", 9)), &bytes).unwrap();
        assert_eq!(cache.load(9), None);
        assert_eq!(cache.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_fault_kind_degrades_to_cold() {
        for kind in IoFaultKind::ALL {
            let dir = temp_dir(&format!("fault-{}", kind.name()));
            let injector = Arc::new(IoFaultInjector::new(kind, 1));
            let cache =
                DiskCache::with_io(&dir, Box::new(FaultyIo::new(Arc::clone(&injector)))).unwrap();
            cache.store(11, b"precious result");
            assert_eq!(injector.injected(), 1, "{kind}: fault must fire");
            // Whatever the fault did, a load never returns wrong bytes:
            // either the entry survived intact (fault hit the temp file
            // and was caught before publish) or it misses.
            if let Some(bytes) = cache.load(11) {
                assert_eq!(bytes, b"precious result", "{kind}");
            }
            let stats = cache.stats();
            assert!(
                stats.write_errors + stats.quarantined + stats.hits > 0,
                "{kind}: fault must be visible in stats: {stats}"
            );
            // A second store (fault already spent) must succeed.
            cache.store(11, b"precious result");
            assert_eq!(
                cache.load(11).as_deref(),
                Some(&b"precious result"[..]),
                "{kind}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn torn_temp_write_never_publishes_a_partial_entry() {
        let dir = temp_dir("torn-publish");
        let injector = Arc::new(IoFaultInjector::new(IoFaultKind::TornWrite, 1));
        let cache = DiskCache::with_io(&dir, Box::new(FaultyIo::new(injector))).unwrap();
        cache.store(2, b"half of me will be missing");
        // The torn temp file was renamed into place (the tear was
        // silent), so the *validator* must catch it at load time.
        assert_eq!(cache.load(2), None);
        assert_eq!(cache.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_enforces_byte_budget() {
        let dir = temp_dir("evict");
        let entry_size = (HEADER_LEN + 100) as u64;
        let cache = DiskCache::open(&dir)
            .unwrap()
            .with_max_bytes(entry_size * 2);
        let payload = [0u8; 100];
        cache.store(1, &payload);
        cache.store(2, &payload);
        // Make entry 1 the most recently used, then overflow the budget.
        std::thread::sleep(Duration::from_millis(20));
        assert!(cache.load(1).is_some());
        std::thread::sleep(Duration::from_millis(20));
        cache.store(3, &payload);
        assert_eq!(cache.stats().evicted, 1);
        assert_eq!(cache.entry_count(), 2);
        assert!(cache.load(2).is_none(), "LRU entry 2 must be the victim");
        assert!(cache.load(1).is_some());
        assert!(cache.load(3).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_quarantines_bad_entries_and_counts_good_ones() {
        let dir = temp_dir("verify");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store(1, b"good");
        cache.store(2, b"soon bad");
        let victim = dir.join(format!("{:016x}.art", 2));
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();
        let outcome = cache.verify();
        assert_eq!(
            outcome,
            VerifyOutcome {
                valid: 1,
                quarantined: 1
            }
        );
        assert_eq!(cache.quarantine_count(), 1);
        // Idempotent: a second verify finds only the good entry.
        assert_eq!(
            cache.verify(),
            VerifyOutcome {
                valid: 1,
                quarantined: 0
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_entries_and_quarantine() {
        let dir = temp_dir("clear");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store(1, b"a");
        cache.store(2, b"b");
        cache.quarantine_key(1, "test");
        assert_eq!(cache.clear(), 2);
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(cache.quarantine_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_broken() {
        let dir = temp_dir("stalelock");
        let cache = DiskCache::open(&dir).unwrap();
        let lock = dir.join(".lock");
        std::fs::write(&lock, "99999").unwrap();
        // Backdate the lock past the staleness horizon.
        let old = std::time::SystemTime::now() - Duration::from_secs(LOCK_STALE_SECS + 5);
        let f = std::fs::File::options().append(true).open(&lock).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(old))
            .unwrap();
        drop(f);
        cache.store(4, b"through the stale lock");
        assert_eq!(cache.stats().writes, 1);
        assert_eq!(
            cache.load(4).as_deref(),
            Some(&b"through the stale lock"[..])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn backdate(path: &Path) {
        let old = std::time::SystemTime::now() - Duration::from_secs(LOCK_STALE_SECS + 5);
        let f = std::fs::File::options().append(true).open(path).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(old))
            .unwrap();
    }

    /// [`RealIo`] whose removals of a *stale* `.lock` are artificially
    /// staggered, widening the judge→unlink window the pre-fix breaking
    /// code raced on: contender B's delayed unlink lands after contender
    /// A already re-created the lock, letting C in alongside A.
    struct StaggeredBreakIo {
        inner: RealIo,
        seq: std::sync::atomic::AtomicUsize,
    }

    impl CacheIo for StaggeredBreakIo {
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            self.inner.read(path)
        }
        fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            self.inner.write(path, bytes)
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            self.inner.rename(from, to)
        }
        fn remove(&self, path: &Path) -> io::Result<()> {
            let is_lock = path.file_name().and_then(|n| n.to_str()) == Some(".lock");
            if is_lock && lock_is_stale(lock_mtime(path)) {
                // Delay even the first unlink so every contender gets to
                // judge the old lock stale before any of them removes it.
                let n = self
                    .seq
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
                    .min(8);
                std::thread::sleep(Duration::from_millis(10 * (n as u64 + 1)));
            }
            self.inner.remove(path)
        }
        fn create_lock(&self, path: &Path) -> io::Result<()> {
            self.inner.create_lock(path)
        }
    }

    #[test]
    fn breaking_a_stale_lock_admits_exactly_one_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = temp_dir("break-race");
        std::fs::create_dir_all(&dir).unwrap();
        let lock = dir.join(".lock");
        std::fs::write(&lock, "99999").unwrap();
        backdate(&lock);
        let io: Arc<StaggeredBreakIo> = Arc::new(StaggeredBreakIo {
            inner: RealIo,
            seq: AtomicUsize::new(0),
        });
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (io, active, peak, dir) = (&io, &active, &peak, &dir);
                scope.spawn(move || {
                    let guard = DirLock::acquire(io.as_ref() as &dyn CacheIo, dir)
                        .expect("every contender eventually acquires");
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(25));
                    active.fetch_sub(1, Ordering::SeqCst);
                    drop(guard);
                });
            }
        });
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "two contenders held the advisory lock at once"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// [`RealIo`] that simulates the legitimate owner's refresh landing
    /// in the window between a contender judging the lock stale and
    /// unlinking it: the moment the contender wins the break mutex, the
    /// lock's mtime moves. The breaker must notice and decline.
    struct RefreshRacingIo {
        inner: RealIo,
        lock: PathBuf,
    }

    impl CacheIo for RefreshRacingIo {
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            self.inner.read(path)
        }
        fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            self.inner.write(path, bytes)
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            self.inner.rename(from, to)
        }
        fn remove(&self, path: &Path) -> io::Result<()> {
            self.inner.remove(path)
        }
        fn create_lock(&self, path: &Path) -> io::Result<()> {
            let created = self.inner.create_lock(path);
            if created.is_ok() && path.file_name().and_then(|n| n.to_str()) == Some(".lock.break") {
                touch(&self.lock);
            }
            created
        }
    }

    #[test]
    fn a_lock_refreshed_after_being_judged_stale_is_never_unlinked() {
        let dir = temp_dir("refresh-race");
        std::fs::create_dir_all(&dir).unwrap();
        let lock = dir.join(".lock");
        std::fs::write(&lock, "99999").unwrap();
        backdate(&lock);
        let io = RefreshRacingIo {
            inner: RealIo,
            lock: lock.clone(),
        };
        // The owner keeps refreshing (via the interposed IO), so the
        // contender must give up rather than break a live lock.
        assert!(DirLock::acquire(&io, &dir).is_err());
        assert!(lock.exists(), "the refreshed lock must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_marks_a_long_holder_alive() {
        let dir = temp_dir("refresh");
        std::fs::create_dir_all(&dir).unwrap();
        let io = RealIo;
        let guard = DirLock::acquire(&io, &dir).unwrap();
        backdate(&guard.path);
        assert!(lock_is_stale(lock_mtime(&guard.path)));
        guard.refresh();
        assert!(
            !lock_is_stale(lock_mtime(&guard.path)),
            "refresh must move the lock out of the staleness horizon"
        );
    }

    #[test]
    fn eviction_touches_only_canonical_payload_entries() {
        let dir = temp_dir("evict-scope");
        let cache = DiskCache::open(&dir).unwrap().with_max_bytes(0);
        // Populate every kind of neighbour that shares the directory.
        let audit_dir = dir.join("audit");
        std::fs::create_dir_all(&audit_dir).unwrap();
        let ledger = audit_dir.join("00000000deadbeef.ledger");
        std::fs::write(&ledger, "ledger").unwrap();
        let qdir = dir.join("quarantine");
        std::fs::create_dir_all(&qdir).unwrap();
        let quarantined = qdir.join(format!("{:016x}.art", 1));
        std::fs::write(&quarantined, "poison").unwrap();
        let stray = dir.join("stray.art");
        std::fs::write(&stray, "a user file that merely ends in .art").unwrap();
        let fresh_tmp = dir.join(format!(".tmp-{:016x}.99999", 2));
        std::fs::write(&fresh_tmp, "in-flight writer").unwrap();
        let dead_tmp = dir.join(format!(".tmp-{:016x}.88888", 3));
        std::fs::write(&dead_tmp, "crashed writer").unwrap();
        backdate(&dead_tmp);
        // A store over budget 0 must evict — but only its own kind.
        cache.store(7, b"payload");
        assert_eq!(cache.entry_count(), 0, "the payload entry is evicted");
        assert_eq!(cache.stats().evicted, 1);
        assert!(ledger.exists(), "audit ledgers are not eviction fodder");
        assert!(
            quarantined.exists(),
            "quarantined files are kept for postmortems"
        );
        assert!(stray.exists(), "foreign *.art files are outside the sweep");
        assert!(fresh_tmp.exists(), "a live writer's temp file survives");
        assert!(!dead_tmp.exists(), "a crashed writer's stale temp is swept");
        assert!(
            !dir.join(".lock").exists(),
            "the lock was released, never evicted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_zero_churn_still_attributes_eviction_in_the_audit() {
        use crate::session::AnalysisSession;
        let dir = temp_dir("evict-why");
        let source = "main\n  x = 1\n  print(x)\nend\n";
        let run = || {
            let cache = Arc::new(DiskCache::open(&dir).unwrap().with_max_bytes(0));
            let mut session = AnalysisSession::from_source(source).unwrap();
            session.attach_disk_cache(cache);
            session.set_audit_label("churn.mf");
            let session = session;
            session.analyze(&AnalysisConfig::default());
            session.last_audit().expect("audit available")
        };
        run();
        // The second run finds its outcome evicted (budget 0), and the
        // ledger-backed audit says so — `ipcp why` keeps attributing
        // correctly even while eviction churns around the ledger.
        let audit = run();
        let rendered = audit.render(None);
        assert!(
            rendered.contains("evicted"),
            "expected an eviction attribution, got:\n{rendered}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_key_separates_programs_and_configs() {
        let base = AnalysisConfig::default();
        let other = AnalysisConfig {
            return_jump_functions: !base.return_jump_functions,
            ..AnalysisConfig::default()
        };
        assert_ne!(outcome_key(1, &base), outcome_key(2, &base));
        assert_ne!(outcome_key(1, &base), outcome_key(1, &other));
        let cond = AnalysisConfig::conditional();
        let plain = AnalysisConfig {
            branch_feasibility: false,
            ..AnalysisConfig::conditional()
        };
        assert_ne!(outcome_key(1, &cond), outcome_key(1, &plain));
        // jobs and fuel must NOT affect the key.
        let tuned = AnalysisConfig {
            jobs: 8,
            fuel: Some(1_000_000),
            ..AnalysisConfig::default()
        };
        assert_eq!(outcome_key(1, &base), outcome_key(1, &tuned));
    }

    #[test]
    fn analysis_outcome_wire_roundtrip_is_bit_identical() {
        let outcome = crate::analyze_source(
            "global n\n\
             proc f(a)\n  print(a + n)\nend\n\
             main\n  n = 3\n  call f(4)\nend\n",
            &AnalysisConfig::default(),
        )
        .expect("analyzes");
        let bytes = encode_to_vec(&outcome);
        let back: AnalysisOutcome = decode_from_slice(&bytes).expect("decodes");
        assert_eq!(
            encode_to_vec(&back),
            bytes,
            "re-encode must be bit-identical"
        );
        assert_eq!(back.constant_slot_count(), outcome.constant_slot_count());
        assert_eq!(back.substitutions, outcome.substitutions);
    }
}
