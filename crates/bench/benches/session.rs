//! Artifact reuse across a configuration sweep — the payoff the
//! [`ipcp_core::AnalysisSession`] refactor exists for.
//!
//! A full Table-2-style sweep (all four jump-function kinds, each with
//! and without return jump functions — 8 configurations) is measured two
//! ways per program:
//!
//! * `independent` — 8 straight-line single-shot pipelines, the
//!   pre-session behaviour;
//! * `session` — one fresh session driving all 8, so the call graph,
//!   MOD/REF summaries, per-procedure SSA, symbolic values, and return
//!   jump functions are computed once and reused across columns.
//!
//! The session sweep is expected to be ≥ 2× faster end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcp_core::{analyze_reference, AnalysisConfig, AnalysisSession, JumpFunctionKind};
use ipcp_suite::{generate, spec};
use std::hint::black_box;

fn sweep_configs() -> Vec<AnalysisConfig> {
    let mut configs = Vec::new();
    for kind in JumpFunctionKind::ALL {
        for rjf in [true, false] {
            configs.push(AnalysisConfig {
                jump_function: kind,
                return_jump_functions: rjf,
                ..AnalysisConfig::default()
            });
        }
    }
    configs
}

fn programs() -> Vec<(String, ipcp_ir::Program)> {
    ["adm", "linpackd", "ocean"]
        .iter()
        .map(|name| {
            let g = generate(&spec(name).expect("spec"));
            let ir = ipcp_ir::compile_to_ir(&g.source).expect("compiles");
            (g.name, ir)
        })
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let programs = programs();
    let configs = sweep_configs();
    let mut group = c.benchmark_group("table2_sweep");
    group.sample_size(20);
    for (name, ir) in &programs {
        group.bench_with_input(BenchmarkId::new("independent", name), ir, |b, ir| {
            b.iter(|| {
                let mut total = 0usize;
                for config in &configs {
                    total += analyze_reference(black_box(ir), config).substitutions.total;
                }
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("session", name), ir, |b, ir| {
            b.iter(|| {
                let session = AnalysisSession::new(black_box(ir));
                let mut total = 0usize;
                for config in &configs {
                    total += session.analyze(config).substitutions.total;
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
