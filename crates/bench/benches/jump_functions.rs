//! Analysis cost per jump-function implementation (the paper's §3.1.5
//! cost/precision tradeoff, measured end-to-end).
//!
//! The paper argues the pass-through parameter jump function is the most
//! cost-effective: polynomial buys no extra constants (Table 2) but pays
//! for more complex data structures. These benches measure full analysis
//! time per kind over three representative suite programs (the largest,
//! a mid-size, and the return-jump-function-heavy one), plus the Table 3
//! configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcp_core::{analyze, AnalysisConfig, JumpFunctionKind};
use ipcp_suite::{generate, spec};
use std::hint::black_box;

fn programs() -> Vec<(String, ipcp_ir::Program)> {
    ["adm", "linpackd", "ocean"]
        .iter()
        .map(|name| {
            let g = generate(&spec(name).expect("spec"));
            let ir = ipcp_ir::compile_to_ir(&g.source).expect("compiles");
            (g.name, ir)
        })
        .collect()
}

fn bench_jump_function_kinds(c: &mut Criterion) {
    let programs = programs();
    let mut group = c.benchmark_group("analysis_by_jump_function");
    group.sample_size(20);
    for (name, ir) in &programs {
        for kind in JumpFunctionKind::ALL {
            let config = AnalysisConfig {
                jump_function: kind,
                ..AnalysisConfig::default()
            };
            group.bench_with_input(BenchmarkId::new(kind.to_string(), name), ir, |b, ir| {
                b.iter(|| black_box(analyze(black_box(ir), &config)))
            });
        }
    }
    group.finish();
}

fn bench_table3_configs(c: &mut Criterion) {
    let programs = programs();
    let mut group = c.benchmark_group("analysis_by_technique");
    group.sample_size(20);
    let configs: Vec<(&str, AnalysisConfig)> = vec![
        (
            "no_mod",
            AnalysisConfig {
                mod_info: false,
                ..AnalysisConfig::default()
            },
        ),
        ("with_mod", AnalysisConfig::default()),
        (
            "complete",
            AnalysisConfig {
                complete_propagation: true,
                ..AnalysisConfig::default()
            },
        ),
        (
            "intraprocedural",
            AnalysisConfig::intraprocedural_baseline(),
        ),
        (
            "no_rjf",
            AnalysisConfig {
                return_jump_functions: false,
                ..AnalysisConfig::default()
            },
        ),
    ];
    for (name, ir) in &programs {
        for (label, config) in &configs {
            group.bench_with_input(BenchmarkId::new(*label, name), ir, |b, ir| {
                b.iter(|| black_box(analyze(black_box(ir), config)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_jump_function_kinds, bench_table3_configs);
criterion_main!(benches);
