//! Parallel vs sequential analysis — the deterministic thread-pool's
//! wall-clock payoff.
//!
//! Two scenarios per program:
//!
//! * `sweep` — the full 8-configuration Table-2 sweep through one fresh
//!   session, at `jobs = 1` (sequential columns) vs `jobs = 4` (one warm
//!   column, then the columns fanned out over the shared `RwLock`'d
//!   store). Target on a ≥ 4-core host: ≥ 2×; a single-core host (CI
//!   containers often are) shows parity, since the fan-outs fall back to
//!   timesharing one core.
//! * `single` — one default-config analysis at `jobs = 1` vs `jobs = 4`:
//!   the per-procedure fan-out and SCC-wave scheduling alone.
//!
//! Substitution totals are asserted equal across worker counts on every
//! iteration — the determinism guarantee is exercised, not assumed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcp_core::{AnalysisConfig, AnalysisSession};
use ipcp_suite::{generate, spec};
use std::hint::black_box;

const JOBS: usize = 4;

fn programs() -> Vec<(String, ipcp_ir::Program)> {
    ["adm", "linpackd", "ocean"]
        .iter()
        .map(|name| {
            let g = generate(&spec(name).expect("spec"));
            let ir = ipcp_ir::compile_to_ir(&g.source).expect("compiles");
            (g.name, ir)
        })
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let programs = programs();
    let mut group = c.benchmark_group("parallel_sweep");
    group.sample_size(10);
    for (name, ir) in &programs {
        let baseline = ipcp_bench::run_sweep(ir, 1).1;
        for jobs in [1usize, JOBS] {
            group.bench_with_input(
                BenchmarkId::new(format!("jobs{jobs}"), name),
                ir,
                |b, ir| {
                    b.iter(|| {
                        let (_, totals) = ipcp_bench::run_sweep(black_box(ir), jobs);
                        assert_eq!(totals, baseline, "jobs={jobs} diverged on {name}");
                        black_box(totals)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_single(c: &mut Criterion) {
    let programs = programs();
    let mut group = c.benchmark_group("parallel_single");
    group.sample_size(10);
    for (name, ir) in &programs {
        for jobs in [1usize, JOBS] {
            let config = AnalysisConfig {
                jobs,
                ..AnalysisConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("jobs{jobs}"), name),
                ir,
                |b, ir| {
                    b.iter(|| {
                        let session = AnalysisSession::new(black_box(ir));
                        black_box(session.analyze(&config).substitutions.total)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_single);
criterion_main!(benches);
