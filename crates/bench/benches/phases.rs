//! Per-phase costs on the largest suite program (`adm`): front end,
//! lowering, call graph, MOD/REF summaries, SSA construction, symbolic
//! value numbering, return/forward jump function generation, the
//! interprocedural solver, and the substitution-counting SCCP.
//!
//! The paper observes that "the cost of intraprocedural analysis
//! dominates the cost of the interprocedural phase" (§4.1) — these
//! benches make that claim measurable.

use criterion::{criterion_group, criterion_main, Criterion};
use ipcp_analysis::symeval::symbolic_eval;
use ipcp_analysis::{augment_global_vars, compute_modref, CallGraph, ModKills, NoCallSymbolics};
use ipcp_core::{build_forward_jfs, build_return_jfs, solver, JumpFunctionKind, RjfConstEval};
use ipcp_ssa::build_ssa;
use ipcp_suite::{generate, spec};
use std::hint::black_box;

fn bench_phases(c: &mut Criterion) {
    let source = generate(&spec("adm").expect("spec")).source;
    let mut group = c.benchmark_group("phases_adm");
    group.sample_size(20);

    group.bench_function("front_end", |b| {
        b.iter(|| black_box(ipcp_lang::compile(black_box(&source)).expect("compiles")))
    });

    let checked = ipcp_lang::compile(&source).expect("compiles");
    group.bench_function("lowering", |b| {
        b.iter(|| black_box(ipcp_ir::lower::lower(black_box(&checked))))
    });

    let mut program = ipcp_ir::lower::lower(&checked);
    group.bench_function("call_graph", |b| {
        b.iter(|| black_box(CallGraph::new(black_box(&program))))
    });

    let cg = CallGraph::new(&program);
    group.bench_function("modref_summaries", |b| {
        b.iter(|| black_box(compute_modref(black_box(&program), &cg)))
    });

    let modref = compute_modref(&program, &cg);
    augment_global_vars(&mut program, &modref);
    let cg = CallGraph::new(&program);
    let kills = ModKills::new(&program, &modref);

    group.bench_function("ssa_all_procs", |b| {
        b.iter(|| {
            for pid in program.proc_ids() {
                black_box(build_ssa(&program, program.proc(pid), &kills));
            }
        })
    });

    group.bench_function("symbolic_eval_all_procs", |b| {
        let ssas: Vec<_> = program
            .proc_ids()
            .map(|pid| (pid, build_ssa(&program, program.proc(pid), &kills)))
            .collect();
        b.iter(|| {
            for (pid, ssa) in &ssas {
                black_box(symbolic_eval(program.proc(*pid), ssa, &NoCallSymbolics));
            }
        })
    });

    group.bench_function("return_jump_functions", |b| {
        b.iter(|| black_box(build_return_jfs(&program, &cg, &kills)))
    });

    let rjfs = build_return_jfs(&program, &cg, &kills);
    let eval = RjfConstEval { rjfs: &rjfs };
    group.bench_function("forward_jump_functions", |b| {
        b.iter(|| {
            black_box(build_forward_jfs(
                &program,
                &cg,
                &modref,
                JumpFunctionKind::Polynomial,
                &kills,
                &eval,
            ))
        })
    });

    let jfs = build_forward_jfs(
        &program,
        &cg,
        &modref,
        JumpFunctionKind::Polynomial,
        &kills,
        &eval,
    );
    group.bench_function("interprocedural_solver", |b| {
        b.iter(|| black_box(solver::solve(&program, &cg, &modref, &jfs)))
    });

    let vals = solver::solve(&program, &cg, &modref, &jfs);
    let lattice = ipcp_core::RjfLattice { rjfs: &rjfs };
    group.bench_function("substitution_counting", |b| {
        b.iter(|| {
            black_box(ipcp_core::count_substitutions(
                &program,
                &cg,
                &kills,
                &lattice,
                Some(&vals),
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
