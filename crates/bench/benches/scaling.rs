//! Scaling sweeps: how analysis cost grows with program structure,
//! matching the paper's §3.1.5 complexity discussion.
//!
//! * `chain_depth` — pass-through chains of growing length: literal and
//!   intraprocedural jump functions propagate only one edge, so their
//!   cost stays flat while pass-through/polynomial pay for each hop
//!   (`O(Σ cost(J))`, §3.1.5 case 2).
//! * `fanout` — one constant distributed to N leaf procedures.
//! * `program_size` — the full pipeline over generated programs of
//!   growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcp_core::{analyze, AnalysisConfig, JumpFunctionKind};
use std::fmt::Write as _;
use std::hint::black_box;

/// A pass-through chain of `depth` procedures.
fn chain_program(depth: usize) -> ipcp_ir::Program {
    let mut src = String::new();
    let _ = writeln!(src, "proc p{depth}(v)\n  print(v)\nend");
    for i in (1..depth).rev() {
        let _ = writeln!(src, "proc p{i}(v)\n  call p{}(v)\nend", i + 1);
    }
    let _ = writeln!(src, "main\n  call p1(42)\nend");
    ipcp_ir::compile_to_ir(&src).expect("chain compiles")
}

/// One source procedure feeding `n` leaves.
fn fanout_program(n: usize) -> ipcp_ir::Program {
    let mut src = String::new();
    for i in 0..n {
        let _ = writeln!(src, "proc leaf{i}(v)\n  print(v + {i})\nend");
    }
    src.push_str("main\n");
    for i in 0..n {
        let _ = writeln!(src, "  call leaf{i}(7)");
    }
    src.push_str("end\n");
    ipcp_ir::compile_to_ir(&src).expect("fanout compiles")
}

fn bench_chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_depth");
    group.sample_size(15);
    for depth in [4usize, 16, 64, 256] {
        let program = chain_program(depth);
        for kind in [JumpFunctionKind::Literal, JumpFunctionKind::PassThrough] {
            let config = AnalysisConfig {
                jump_function: kind,
                ..AnalysisConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), depth),
                &program,
                |b, p| b.iter(|| black_box(analyze(black_box(p), &config))),
            );
        }
    }
    group.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout");
    group.sample_size(15);
    for n in [8usize, 32, 128] {
        let program = fanout_program(n);
        let config = AnalysisConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| black_box(analyze(black_box(p), &config)))
        });
    }
    group.finish();
}

fn bench_program_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("program_size");
    group.sample_size(10);
    // Scale the `trfd` spec up by growing its noise budget.
    for scale in [1usize, 4, 16] {
        let mut spec = ipcp_suite::spec("trfd").expect("spec");
        spec.target_lines *= scale;
        spec.target_procs *= scale;
        let source = ipcp_suite::generate(&spec).source;
        let program = ipcp_ir::compile_to_ir(&source).expect("compiles");
        let lines = source.lines().count();
        let config = AnalysisConfig::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{lines}_lines")),
            &program,
            |b, p| b.iter(|| black_box(analyze(black_box(p), &config))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_chain_depth, bench_fanout, bench_program_size);
criterion_main!(benches);
