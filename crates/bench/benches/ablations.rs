//! Ablation benchmarks for design choices DESIGN.md calls out:
//!
//! * **solver formulation** — the paper's simple call-graph worklist vs
//!   the binding-multigraph sparse solver (§2);
//! * **literal construction** — the paper's "textual scan" claim
//!   (§3.1.5): building literal jump functions without SSA or value
//!   numbering vs the general symbolic path;
//! * **gsa** — the gated-single-assignment extension vs plain analysis vs
//!   iterated complete propagation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcp_analysis::{augment_global_vars, compute_modref, CallGraph, ModKills};
use ipcp_core::{
    analyze, build_forward_jfs, build_literal_jfs_fast, build_return_jfs, solve, solve_binding,
    AnalysisConfig, JumpFunctionKind, RjfConstEval, SolverKind,
};
use ipcp_suite::{generate, spec};
use std::hint::black_box;

struct Prepared {
    name: String,
    program: ipcp_ir::Program,
}

fn prepare(names: &[&str]) -> Vec<Prepared> {
    names
        .iter()
        .map(|name| {
            let g = generate(&spec(name).expect("spec"));
            let mut program = ipcp_ir::compile_to_ir(&g.source).expect("compiles");
            let cg = CallGraph::new(&program);
            let modref = compute_modref(&program, &cg);
            augment_global_vars(&mut program, &modref);
            Prepared {
                name: g.name,
                program,
            }
        })
        .collect()
}

fn bench_solver_formulations(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_formulation");
    group.sample_size(30);
    for p in prepare(&["adm", "ocean"]) {
        let cg = CallGraph::new(&p.program);
        let modref = compute_modref(&p.program, &cg);
        let kills = ModKills::new(&p.program, &modref);
        let rjfs = build_return_jfs(&p.program, &cg, &kills);
        let jfs = build_forward_jfs(
            &p.program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &RjfConstEval { rjfs: &rjfs },
        );
        group.bench_with_input(BenchmarkId::new("call_graph", &p.name), &(), |b, ()| {
            b.iter(|| black_box(solve(&p.program, &cg, &modref, &jfs)))
        });
        group.bench_with_input(BenchmarkId::new("binding_graph", &p.name), &(), |b, ()| {
            b.iter(|| black_box(solve_binding(&p.program, &cg, &modref, &jfs)))
        });
    }
    group.finish();
}

fn bench_literal_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("literal_jf_construction");
    group.sample_size(30);
    for p in prepare(&["adm"]) {
        let cg = CallGraph::new(&p.program);
        let modref = compute_modref(&p.program, &cg);
        let kills = ModKills::new(&p.program, &modref);
        let rjfs = build_return_jfs(&p.program, &cg, &kills);
        group.bench_with_input(
            BenchmarkId::new("general_ssa_path", &p.name),
            &(),
            |b, ()| {
                b.iter(|| {
                    black_box(build_forward_jfs(
                        &p.program,
                        &cg,
                        &modref,
                        JumpFunctionKind::Literal,
                        &kills,
                        &RjfConstEval { rjfs: &rjfs },
                    ))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("textual_scan", &p.name), &(), |b, ()| {
            b.iter(|| black_box(build_literal_jfs_fast(&p.program, &cg, &modref)))
        });
    }
    group.finish();
}

fn bench_gsa_and_complete(c: &mut Criterion) {
    let mut group = c.benchmark_group("gsa_vs_complete");
    group.sample_size(15);
    for p in prepare(&["ocean", "spec77"]) {
        let configs: Vec<(&str, AnalysisConfig)> = vec![
            ("plain", AnalysisConfig::default()),
            (
                "gsa",
                AnalysisConfig {
                    gsa: true,
                    ..AnalysisConfig::default()
                },
            ),
            (
                "complete",
                AnalysisConfig {
                    complete_propagation: true,
                    ..AnalysisConfig::default()
                },
            ),
            (
                "binding_solver",
                AnalysisConfig {
                    solver: SolverKind::BindingGraph,
                    ..AnalysisConfig::default()
                },
            ),
        ];
        for (label, config) in &configs {
            group.bench_with_input(BenchmarkId::new(*label, &p.name), &(), |b, ()| {
                b.iter(|| black_box(analyze(&p.program, config)))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_solver_formulations,
    bench_literal_construction,
    bench_gsa_and_complete
);
criterion_main!(benches);
