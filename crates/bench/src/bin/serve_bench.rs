//! Load generator for the `ipcp serve` daemon.
//!
//! Spawns an in-process daemon on a temp socket, then drives it with
//! N ∈ {1, 4, 16} concurrent clients: a *cold* phase where every client
//! analyzes its own previously-unseen program (full pipeline per
//! request) and a *warm* phase re-requesting the same programs (served
//! from the resident tenants' memo). Client-observed latencies go to
//! `BENCH_serve.json` as req/s plus p50/p99 per phase; every response —
//! cold and warm — is asserted byte-identical to one-shot `ipcp
//! analyze` output, and warm p50 must beat cold p50 by at least 5×.
//!
//! Usage: `cargo run --release -p ipcp-bench --bin serve_bench`

use ipcp_core::serve::{spawn, Client, ServeConfig};
use ipcp_core::{analyze_source, AnalysisConfig};
use ipcp_suite::{generate_scale, ScaleSpec};
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Warm re-requests per client.
const WARM_ITERS: usize = 50;
/// Procedures per generated tenant program. Sized so one cold analysis
/// dominates a warm memo hit by a wide margin even on one core.
const PROGRAM_PROCS: usize = 300;

struct PhaseStats {
    requests: usize,
    elapsed_us: u128,
    p50_us: u64,
    p99_us: u64,
}

impl PhaseStats {
    fn req_per_s(&self) -> f64 {
        self.requests as f64 / (self.elapsed_us.max(1) as f64 / 1_000_000.0)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"elapsed_us\":{},\"req_per_s\":{:.1},\
             \"p50_us\":{},\"p99_us\":{}}}",
            self.requests,
            self.elapsed_us,
            self.req_per_s(),
            self.p50_us,
            self.p99_us
        )
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn stats(mut latencies: Vec<u64>, elapsed_us: u128) -> PhaseStats {
    latencies.sort_unstable();
    PhaseStats {
        requests: latencies.len(),
        elapsed_us,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

/// One client's requests in one phase: `iters` analyzes of `source`,
/// each asserted byte-identical to `golden`. Returns the latencies.
fn drive(socket: &Path, source: &str, golden: &str, iters: usize) -> Vec<u64> {
    let mut client = Client::connect(socket).expect("client connects");
    let mut latencies = Vec::with_capacity(iters);
    for i in 0..iters {
        let start = Instant::now();
        let out = client
            .call(i as u64, "analyze", &[("source", source)])
            .expect("transport")
            .into_result()
            .expect("analyze succeeds");
        latencies.push(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        assert_eq!(
            out, golden,
            "daemon response diverged from one-shot `ipcp analyze` output"
        );
    }
    latencies
}

/// Runs one scenario at `clients` concurrent connections; returns the
/// cold- and warm-phase stats.
fn scenario(clients: usize, programs: &[(String, String)]) -> (PhaseStats, PhaseStats) {
    let socket = std::env::temp_dir().join(format!(
        "ipcp_serve_bench_{}_{clients}.sock",
        std::process::id()
    ));
    let handle = spawn(ServeConfig::new(&socket)).expect("daemon starts");

    let run_phase = |iters: usize| -> PhaseStats {
        let started = Instant::now();
        let latencies: Vec<u64> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let (source, golden) = &programs[c];
                    let socket = &socket;
                    scope.spawn(move || drive(socket, source, golden, iters))
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("client thread"))
                .collect()
        });
        stats(latencies, started.elapsed().as_micros())
    };

    let cold = run_phase(1);
    let warm = run_phase(WARM_ITERS);

    let mut control = Client::connect(&socket).expect("control connects");
    control
        .call(0, "shutdown", &[])
        .expect("transport")
        .into_result()
        .expect("shutdown succeeds");
    let summary = handle.join().expect("clean daemon exit");
    assert_eq!(summary.overloaded, 0, "bench load must never shed");
    assert_eq!(summary.tenants, clients, "one tenant per client");
    (cold, warm)
}

fn main() -> ExitCode {
    // One distinct program per client slot, plus its one-shot golden
    // output (computed outside any timed phase).
    let max_clients = 16;
    let programs: Vec<(String, String)> = (0..max_clients)
        .map(|seed| {
            let source = generate_scale(&ScaleSpec::with_procs(PROGRAM_PROCS, seed as u64)).source;
            let outcome =
                analyze_source(&source, &AnalysisConfig::default()).expect("program analyzes");
            let golden = ipcp_core::report::analyze_to_string(&outcome);
            (source, golden)
        })
        .collect();

    let mut out = String::from("{\"bench\":\"serve\",\"scenarios\":[");
    let mut ok = true;
    for (i, &clients) in [1usize, 4, 16].iter().enumerate() {
        let (cold, warm) = scenario(clients, &programs);
        let speedup = cold.p50_us as f64 / warm.p50_us.max(1) as f64;
        println!(
            "{clients:>2} clients: cold p50 {}us p99 {}us ({:.1} req/s), \
             warm p50 {}us p99 {}us ({:.1} req/s), warm speedup {speedup:.1}x",
            cold.p50_us,
            cold.p99_us,
            cold.req_per_s(),
            warm.p50_us,
            warm.p99_us,
            warm.req_per_s(),
        );
        if speedup < 5.0 {
            eprintln!("FAIL: warm p50 must be >= 5x faster than cold at {clients} clients");
            ok = false;
        }
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"clients\":{clients},\"cold\":{},\"warm\":{},\"warm_speedup\":{speedup:.1}}}",
            cold.to_json(),
            warm.to_json()
        );
    }
    out.push_str("],\"warm_identical\":true}\n");
    if !ok {
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write("BENCH_serve.json", &out) {
        eprintln!("cannot write BENCH_serve.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote BENCH_serve.json");
    ExitCode::SUCCESS
}
