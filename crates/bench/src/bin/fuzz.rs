//! Standalone differential-fuzzing driver: generates random Minifor
//! programs and checks that the optimize pipeline preserves semantics at
//! every jump-function level. Thin wrapper over [`ipcp_suite::fuzz`];
//! the `ipcp fuzz` subcommand exposes the same campaign with more flags.
//!
//! ```text
//! fuzz [iters] [seed] [jobs] [corpus-dir]
//! ```

use ipcp_core::obs::NoopSink;
use ipcp_suite::fuzz::{run_fuzz, FuzzConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = FuzzConfig::default();
    if let Some(n) = args.first().and_then(|a| a.parse().ok()) {
        config.iters = n;
    }
    if let Some(s) = args.get(1).and_then(|a| a.parse().ok()) {
        config.seed = s;
    }
    if let Some(j) = args.get(2).and_then(|a| a.parse().ok()) {
        config.jobs = j;
    }
    if let Some(dir) = args.get(3) {
        config.corpus_dir = Some(dir.into());
    }
    let report = run_fuzz(&config, &NoopSink);
    println!("{}", report.summary());
    for v in &report.violations {
        println!(
            "VIOLATION [{} @ {}] seed {:#018x}: {}",
            v.oracle, v.level, v.seed, v.detail
        );
    }
    for path in &report.repro_paths {
        println!("repro written: {}", path.display());
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
