//! Regenerates all evaluation tables side by side with the paper.
//! Pass `--timing` to also print single-run analysis times per
//! configuration (Criterion benches give the careful numbers).
fn main() {
    let timing = std::env::args().any(|a| a == "--timing");
    let suite = ipcp_bench::prepare_suite();
    println!("{}", ipcp_bench::render_table1(&suite));
    println!("{}", ipcp_bench::render_table2(&suite));
    println!("{}", ipcp_bench::render_table3(&suite));
    if timing {
        println!("{}", ipcp_bench::render_timings(&suite));
    }
}
