//! Regenerates all evaluation tables side by side with the paper.
//! Pass `--timing` to also print single-run analysis times per
//! configuration (Criterion benches give the careful numbers).
//! Pass `--robustness [fuel]` to instead emit one JSON line per suite
//! program describing how a fuel-limited run (default 10000 units)
//! degraded — the machine-readable face of the resource-governance
//! subsystem.
use ipcp_core::{analyze, AnalysisConfig};

fn robustness_report(fuel: u64) {
    let suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig {
        fuel: Some(fuel),
        ..Default::default()
    };
    for prepared in &suite {
        let outcome = analyze(&prepared.ir, &config);
        println!(
            "{{\"program\":\"{}\",\"substitutions\":{},\"report\":{}}}",
            prepared.generated.name,
            outcome.substitutions.total,
            outcome.robustness.to_json()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--robustness") {
        let fuel = args
            .get(i + 1)
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(10_000);
        robustness_report(fuel);
        return;
    }
    let timing = args.iter().any(|a| a == "--timing");
    let suite = ipcp_bench::prepare_suite();
    println!("{}", ipcp_bench::render_table1(&suite));
    println!("{}", ipcp_bench::render_table2(&suite));
    println!("{}", ipcp_bench::render_table3(&suite));
    if timing {
        println!("{}", ipcp_bench::render_timings(&suite));
    }
}
