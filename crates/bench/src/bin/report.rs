//! Regenerates all evaluation tables side by side with the paper.
//!
//! The suite is generated, compiled, and fingerprinted exactly once:
//! every table reuses the same prepared programs and their analysis
//! sessions, so configuration-independent artifacts (call graph,
//! MOD/REF, SSA, return jump functions) are built once per program
//! rather than once per table column.
//!
//! Pass `--timing` to also print single-run analysis times per
//! configuration (Criterion benches give the careful numbers).
//! Pass `--robustness [fuel]` to instead emit one JSON line per suite
//! program describing how a fuel-limited run (default 10000 units)
//! degraded — the machine-readable face of the resource-governance
//! subsystem — including a `phase_stats` block with the session's
//! per-phase wall-clock and cache traffic.
//! Pass `--bench-json [jobs]` to instead run the 8-configuration
//! Table-2 sweep per program at `jobs = 1` and `jobs = N` (default:
//! every available core) and write `BENCH_parallel.json` — sweep
//! wall-clock, speedup, and the per-phase wall/span stats at both
//! worker counts — plus `BENCH_obs.json` with the traced per-phase
//! *self* times and counters of one default-configuration run per
//! program.
//! Pass `--trace [path]` to instead run the suite with a recording
//! observability sink and write one combined Chrome trace-event JSON
//! file (default `trace.json`; one Chrome process per program),
//! validated before it is written.
//! Pass `--cache-bench [dir]` to instead run the 8-configuration sweep
//! twice through the persistent disk cache — once cold (empty cache,
//! fresh sessions) and once warm (fresh sessions, populated cache) —
//! assert the substitution totals are bit-identical, and write
//! `BENCH_cache.json` with per-program and total cold/warm wall-clock
//! and speedup.
use ipcp_core::obs::{chrome_trace_json_multi, validate_chrome_trace, TraceSink, TraceSnapshot};
use ipcp_core::{AnalysisConfig, AnalysisSession, DiskCache};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

/// `std::fs::write` with the failure turned into a diagnostic instead of
/// a panic; `main` converts the error into a nonzero exit code.
fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write `{path}`: {e}"))
}

fn robustness_report(fuel: u64) {
    let suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig {
        fuel: Some(fuel),
        ..Default::default()
    };
    for prepared in &suite {
        let session = prepared.session();
        let outcome = session.analyze(&config);
        println!(
            "{{\"program\":\"{}\",\"substitutions\":{},\"report\":{},\"phase_stats\":{}}}",
            prepared.generated.name,
            outcome.substitutions.total,
            outcome.robustness.to_json(),
            session.stats().to_json()
        );
    }
}

fn bench_json(jobs: usize) -> Result<(), String> {
    let suite = ipcp_bench::prepare_suite();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"bench\":\"table2_sweep\",\"jobs\":{jobs},\"programs\":["
    );
    for (i, p) in suite.iter().enumerate() {
        let start = std::time::Instant::now();
        let (seq_session, seq_totals) = ipcp_bench::run_sweep(&p.ir, 1);
        let seq_us = start.elapsed().as_micros();
        let start = std::time::Instant::now();
        let (par_session, par_totals) = ipcp_bench::run_sweep(&p.ir, jobs);
        let par_us = start.elapsed().as_micros();
        assert_eq!(
            seq_totals, par_totals,
            "parallel sweep diverged for {}",
            p.generated.name
        );
        let speedup = seq_us as f64 / par_us.max(1) as f64;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"program\":\"{}\",\"wall_us\":{{\"jobs_1\":{seq_us},\"jobs_n\":{par_us}}},\
             \"speedup\":{speedup:.2},\"phase_stats_jobs_1\":{},\"phase_stats_jobs_n\":{}}}",
            p.generated.name,
            seq_session.stats().to_json(),
            par_session.stats().to_json()
        );
    }
    out.push_str("]}");
    write_file("BENCH_parallel.json", &out)?;
    println!("wrote BENCH_parallel.json ({jobs} workers)");

    // Per-phase *self* times (span duration minus nested children) of
    // one traced default-configuration run per program.
    let mut obs = String::from("{\"bench\":\"obs_self_time\",\"programs\":[");
    for (i, p) in suite.iter().enumerate() {
        let sink = TraceSink::new();
        p.session()
            .analyze_checked_obs(&AnalysisConfig::default(), &sink)
            .expect("unlimited fuel never exhausts");
        let snapshot = sink.snapshot();
        if i > 0 {
            obs.push(',');
        }
        let _ = write!(
            obs,
            "{{\"program\":\"{}\",\"self_time_us\":{{",
            p.generated.name
        );
        for (j, (name, us)) in snapshot.self_times_us().iter().enumerate() {
            if j > 0 {
                obs.push(',');
            }
            let _ = write!(obs, "\"{name}\":{us}");
        }
        obs.push_str("},\"counters\":{");
        for (j, (name, n)) in snapshot.counters.iter().enumerate() {
            if j > 0 {
                obs.push(',');
            }
            let _ = write!(obs, "\"{name}\":{n}");
        }
        obs.push_str("}}");
    }
    obs.push_str("]}");
    write_file("BENCH_obs.json", &obs)?;
    println!("wrote BENCH_obs.json");
    Ok(())
}

fn trace_suite(path: &str) -> Result<(), String> {
    let suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig::default();
    let mut snapshots: Vec<(String, TraceSnapshot)> = Vec::new();
    for p in &suite {
        let sink = TraceSink::new();
        p.session()
            .analyze_checked_obs(&config, &sink)
            .expect("unlimited fuel never exhausts");
        snapshots.push((p.generated.name.clone(), sink.snapshot()));
    }
    let parts: Vec<(&str, &TraceSnapshot)> =
        snapshots.iter().map(|(n, s)| (n.as_str(), s)).collect();
    let json = chrome_trace_json_multi(&parts);
    let stats = validate_chrome_trace(&json).expect("exporter emits valid Chrome trace JSON");
    write_file(path, &json)?;
    println!(
        "wrote {path} ({} events, {} spans, {} threads)",
        stats.events, stats.spans, stats.threads
    );
    Ok(())
}

/// Runs the 8-configuration sweep over the suite through a disk cache
/// at `dir`: one cold pass against an empty cache, then one warm pass
/// with fresh sessions against the populated cache. Substitution totals
/// must be bit-identical across the passes; the wall-clock of both and
/// the cache traffic go to `BENCH_cache.json`.
fn cache_bench(dir: &str) -> Result<(), String> {
    let open = |d: &str| -> Result<Arc<DiskCache>, String> {
        DiskCache::open(d)
            .map(Arc::new)
            .map_err(|e| format!("cannot open cache `{d}`: {e}"))
    };
    // Start from a genuinely cold cache even if the directory survives
    // from an earlier invocation.
    open(dir)?.clear();

    let suite = ipcp_bench::prepare_suite();
    let configs = ipcp_bench::sweep_configs(1);
    // One pass: fresh sessions (no in-memory reuse across passes), all
    // sharing one disk cache handle, every configuration sequentially.
    let run_pass = |cache: &Arc<DiskCache>| -> Vec<(u128, Vec<usize>)> {
        suite
            .iter()
            .map(|p| {
                let mut session = AnalysisSession::new(&p.ir);
                session.attach_disk_cache(Arc::clone(cache));
                let start = std::time::Instant::now();
                let totals: Vec<usize> = configs
                    .iter()
                    .map(|(_, c)| session.analyze(c).substitutions.total)
                    .collect();
                (start.elapsed().as_micros(), totals)
            })
            .collect()
    };

    let cold_cache = open(dir)?;
    let cold = run_pass(&cold_cache);
    let warm_cache = open(dir)?;
    let warm = run_pass(&warm_cache);

    let mut out = String::new();
    let _ = write!(out, "{{\"bench\":\"cache_warm_start\",\"programs\":[");
    let (mut cold_total, mut warm_total) = (0u128, 0u128);
    for (i, p) in suite.iter().enumerate() {
        let (cold_us, cold_totals) = &cold[i];
        let (warm_us, warm_totals) = &warm[i];
        if cold_totals != warm_totals {
            return Err(format!(
                "warm sweep diverged from cold for {}: {cold_totals:?} vs {warm_totals:?}",
                p.generated.name
            ));
        }
        cold_total += cold_us;
        warm_total += warm_us;
        let speedup = *cold_us as f64 / (*warm_us).max(1) as f64;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"program\":\"{}\",\"cold_us\":{cold_us},\"warm_us\":{warm_us},\
             \"speedup\":{speedup:.2}}}",
            p.generated.name
        );
    }
    let speedup = cold_total as f64 / warm_total.max(1) as f64;
    let _ = write!(
        out,
        "],\"total\":{{\"cold_us\":{cold_total},\"warm_us\":{warm_total},\
         \"speedup\":{speedup:.2}}},\"cold_stats\":{},\"warm_stats\":{}}}",
        cold_cache.stats().to_json(),
        warm_cache.stats().to_json()
    );
    write_file("BENCH_cache.json", &out)?;
    println!(
        "wrote BENCH_cache.json (cold {cold_total}us, warm {warm_total}us, \
         speedup {speedup:.2}x; warm cache: {})",
        warm_cache.stats()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--robustness") {
        let fuel = args
            .get(i + 1)
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(10_000);
        robustness_report(fuel);
        return Ok(());
    }
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "trace.json".into());
        return trace_suite(&path);
    }
    if let Some(i) = args.iter().position(|a| a == "--bench-json") {
        let jobs = args
            .get(i + 1)
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| ipcp_core::Parallelism::auto().effective());
        return bench_json(jobs.max(1));
    }
    if let Some(i) = args.iter().position(|a| a == "--cache-bench") {
        let dir = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("ipcp-cache-bench-{}", std::process::id()))
                    .display()
                    .to_string()
            });
        return cache_bench(&dir);
    }
    let timing = args.iter().any(|a| a == "--timing");
    let jobs = ipcp_core::Parallelism::auto().effective();
    let suite = ipcp_bench::prepare_suite();
    println!("{}", ipcp_bench::render_table1(&suite));
    println!("{}", ipcp_bench::render_table2(&suite, jobs));
    println!("{}", ipcp_bench::render_table3(&suite, jobs));
    if timing {
        println!("{}", ipcp_bench::render_timings(&suite));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("report: {e}");
            ExitCode::FAILURE
        }
    }
}
