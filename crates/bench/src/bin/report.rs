//! Regenerates all evaluation tables side by side with the paper.
//!
//! The suite is generated, compiled, and fingerprinted exactly once:
//! every table reuses the same prepared programs and their analysis
//! sessions, so configuration-independent artifacts (call graph,
//! MOD/REF, SSA, return jump functions) are built once per program
//! rather than once per table column.
//!
//! Pass `--timing` to also print single-run analysis times per
//! configuration (Criterion benches give the careful numbers).
//! Pass `--robustness [fuel]` to instead emit one JSON line per suite
//! program describing how a fuel-limited run (default 10000 units)
//! degraded — the machine-readable face of the resource-governance
//! subsystem — including a `phase_stats` block with the session's
//! per-phase wall-clock and cache traffic.
use ipcp_core::AnalysisConfig;

fn robustness_report(fuel: u64) {
    let mut suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig {
        fuel: Some(fuel),
        ..Default::default()
    };
    for prepared in &mut suite {
        let name = prepared.generated.name.clone();
        let session = prepared.session();
        let outcome = session.analyze(&config);
        println!(
            "{{\"program\":\"{}\",\"substitutions\":{},\"report\":{},\"phase_stats\":{}}}",
            name,
            outcome.substitutions.total,
            outcome.robustness.to_json(),
            session.stats().to_json()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--robustness") {
        let fuel = args
            .get(i + 1)
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(10_000);
        robustness_report(fuel);
        return;
    }
    let timing = args.iter().any(|a| a == "--timing");
    let mut suite = ipcp_bench::prepare_suite();
    println!("{}", ipcp_bench::render_table1(&suite));
    println!("{}", ipcp_bench::render_table2(&mut suite));
    println!("{}", ipcp_bench::render_table3(&mut suite));
    if timing {
        println!("{}", ipcp_bench::render_timings(&suite));
    }
}
