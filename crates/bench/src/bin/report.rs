//! Regenerates all evaluation tables side by side with the paper.
//!
//! The suite is generated, compiled, and fingerprinted exactly once:
//! every table reuses the same prepared programs and their analysis
//! sessions, so configuration-independent artifacts (call graph,
//! MOD/REF, SSA, return jump functions) are built once per program
//! rather than once per table column.
//!
//! Pass `--timing` to also print single-run analysis times per
//! configuration (Criterion benches give the careful numbers).
//! Pass `--robustness [fuel]` to instead emit one JSON line per suite
//! program describing how a fuel-limited run (default 10000 units)
//! degraded — the machine-readable face of the resource-governance
//! subsystem — including a `phase_stats` block with the session's
//! per-phase wall-clock and cache traffic.
//! Pass `--bench-json [jobs]` to instead run the 8-configuration
//! Table-2 sweep per program at `jobs = 1` and `jobs = N` (default:
//! every available core) and write `BENCH_parallel.json` — sweep
//! wall-clock, speedup, and the per-phase wall/span stats at both
//! worker counts — plus `BENCH_obs.json` with the traced per-phase
//! *self* times and counters of one default-configuration run per
//! program.
//! Pass `--trace [path]` to instead run the suite with a recording
//! observability sink and write one combined Chrome trace-event JSON
//! file (default `trace.json`; one Chrome process per program),
//! validated before it is written.
use ipcp_core::obs::{chrome_trace_json_multi, validate_chrome_trace, TraceSink, TraceSnapshot};
use ipcp_core::AnalysisConfig;
use std::fmt::Write as _;

fn robustness_report(fuel: u64) {
    let suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig {
        fuel: Some(fuel),
        ..Default::default()
    };
    for prepared in &suite {
        let session = prepared.session();
        let outcome = session.analyze(&config);
        println!(
            "{{\"program\":\"{}\",\"substitutions\":{},\"report\":{},\"phase_stats\":{}}}",
            prepared.generated.name,
            outcome.substitutions.total,
            outcome.robustness.to_json(),
            session.stats().to_json()
        );
    }
}

fn bench_json(jobs: usize) {
    let suite = ipcp_bench::prepare_suite();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"bench\":\"table2_sweep\",\"jobs\":{jobs},\"programs\":["
    );
    for (i, p) in suite.iter().enumerate() {
        let start = std::time::Instant::now();
        let (seq_session, seq_totals) = ipcp_bench::run_sweep(&p.ir, 1);
        let seq_us = start.elapsed().as_micros();
        let start = std::time::Instant::now();
        let (par_session, par_totals) = ipcp_bench::run_sweep(&p.ir, jobs);
        let par_us = start.elapsed().as_micros();
        assert_eq!(
            seq_totals, par_totals,
            "parallel sweep diverged for {}",
            p.generated.name
        );
        let speedup = seq_us as f64 / par_us.max(1) as f64;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"program\":\"{}\",\"wall_us\":{{\"jobs_1\":{seq_us},\"jobs_n\":{par_us}}},\
             \"speedup\":{speedup:.2},\"phase_stats_jobs_1\":{},\"phase_stats_jobs_n\":{}}}",
            p.generated.name,
            seq_session.stats().to_json(),
            par_session.stats().to_json()
        );
    }
    out.push_str("]}");
    std::fs::write("BENCH_parallel.json", &out).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json ({jobs} workers)");

    // Per-phase *self* times (span duration minus nested children) of
    // one traced default-configuration run per program.
    let mut obs = String::from("{\"bench\":\"obs_self_time\",\"programs\":[");
    for (i, p) in suite.iter().enumerate() {
        let sink = TraceSink::new();
        p.session()
            .analyze_checked_obs(&AnalysisConfig::default(), &sink)
            .expect("unlimited fuel never exhausts");
        let snapshot = sink.snapshot();
        if i > 0 {
            obs.push(',');
        }
        let _ = write!(
            obs,
            "{{\"program\":\"{}\",\"self_time_us\":{{",
            p.generated.name
        );
        for (j, (name, us)) in snapshot.self_times_us().iter().enumerate() {
            if j > 0 {
                obs.push(',');
            }
            let _ = write!(obs, "\"{name}\":{us}");
        }
        obs.push_str("},\"counters\":{");
        for (j, (name, n)) in snapshot.counters.iter().enumerate() {
            if j > 0 {
                obs.push(',');
            }
            let _ = write!(obs, "\"{name}\":{n}");
        }
        obs.push_str("}}");
    }
    obs.push_str("]}");
    std::fs::write("BENCH_obs.json", &obs).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}

fn trace_suite(path: &str) {
    let suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig::default();
    let mut snapshots: Vec<(String, TraceSnapshot)> = Vec::new();
    for p in &suite {
        let sink = TraceSink::new();
        p.session()
            .analyze_checked_obs(&config, &sink)
            .expect("unlimited fuel never exhausts");
        snapshots.push((p.generated.name.clone(), sink.snapshot()));
    }
    let parts: Vec<(&str, &TraceSnapshot)> =
        snapshots.iter().map(|(n, s)| (n.as_str(), s)).collect();
    let json = chrome_trace_json_multi(&parts);
    let stats = validate_chrome_trace(&json).expect("exporter emits valid Chrome trace JSON");
    std::fs::write(path, &json).expect("write trace file");
    println!(
        "wrote {path} ({} events, {} spans, {} threads)",
        stats.events, stats.spans, stats.threads
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--robustness") {
        let fuel = args
            .get(i + 1)
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(10_000);
        robustness_report(fuel);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "trace.json".into());
        trace_suite(&path);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--bench-json") {
        let jobs = args
            .get(i + 1)
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| ipcp_core::Parallelism::auto().effective());
        bench_json(jobs.max(1));
        return;
    }
    let timing = args.iter().any(|a| a == "--timing");
    let jobs = ipcp_core::Parallelism::auto().effective();
    let suite = ipcp_bench::prepare_suite();
    println!("{}", ipcp_bench::render_table1(&suite));
    println!("{}", ipcp_bench::render_table2(&suite, jobs));
    println!("{}", ipcp_bench::render_table3(&suite, jobs));
    if timing {
        println!("{}", ipcp_bench::render_timings(&suite));
    }
}
