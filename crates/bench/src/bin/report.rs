//! Regenerates all evaluation tables side by side with the paper.
//!
//! The suite is generated, compiled, and fingerprinted exactly once:
//! every table reuses the same prepared programs and their analysis
//! sessions, so configuration-independent artifacts (call graph,
//! MOD/REF, SSA, return jump functions) are built once per program
//! rather than once per table column.
//!
//! Pass `--timing` to also print single-run analysis times per
//! configuration (Criterion benches give the careful numbers).
//! Pass `--robustness [fuel]` to instead emit one JSON line per suite
//! program describing how a fuel-limited run (default 10000 units)
//! degraded — the machine-readable face of the resource-governance
//! subsystem — including a `phase_stats` block with the session's
//! per-phase wall-clock and cache traffic.
//! Pass `--bench-json [jobs]` to instead run the 8-configuration
//! Table-2 sweep per program at `jobs = 1` and `jobs = N` (default:
//! every available core) and write `BENCH_parallel.json` — sweep
//! wall-clock, speedup, and the per-phase wall/span stats at both
//! worker counts — plus `BENCH_obs.json` with the traced per-phase
//! *self* times and counters of one default-configuration run per
//! program.
//! Pass `--trace [path]` to instead run the suite with a recording
//! observability sink and write one combined Chrome trace-event JSON
//! file (default `trace.json`; one Chrome process per program),
//! validated before it is written.
//! Pass `--cache-bench [dir]` to instead run the 8-configuration sweep
//! twice through the persistent disk cache — once cold (empty cache,
//! fresh sessions) and once warm (fresh sessions, populated cache) —
//! assert the substitution totals are bit-identical, and write
//! Pass `--scale-bench [max_procs]` to instead run the scaling study:
//! generated programs of 1k/10k/100k procedures (capped at
//! `max_procs`) analyzed at worker counts {1, 4, 8}, writing
//! `BENCH_scale.json` with wall-clock, peak RSS, the jump-function
//! arena high-water mark, and the measured growth exponent between
//! sizes (which must stay sub-quadratic).
//! Pass `--obs-bench` to instead measure the cost of the observability
//! stack itself — every suite program analyzed with tracing off and
//! with a recording sink (spans, counters, latency histograms),
//! min-of-repeats — and rewrite `BENCH_obs.json` with the self-time
//! section plus the measured overhead; the run fails if tracing costs
//! more than 5%.
//! Pass `--framework-bench` to check the generic value-context engine
//! against the golden pins and the pre-refactor solver loop, writing
//! `BENCH_framework.json` with the measured overhead (plus the
//! separately-costed conditional-propagation sweep).
//!
//! `BENCH_cache.json` with per-program and total cold/warm wall-clock
//! and speedup.
use ipcp_core::obs::{chrome_trace_json_multi, validate_chrome_trace, TraceSink, TraceSnapshot};
use ipcp_core::{AnalysisConfig, AnalysisSession, DiskCache};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

/// `std::fs::write` with the failure turned into a diagnostic instead of
/// a panic; `main` converts the error into a nonzero exit code.
fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write `{path}`: {e}"))
}

fn robustness_report(fuel: u64) {
    let suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig {
        fuel: Some(fuel),
        ..Default::default()
    };
    for prepared in &suite {
        let session = prepared.session();
        let outcome = session.analyze(&config);
        println!(
            "{{\"program\":\"{}\",\"substitutions\":{},\"report\":{},\"phase_stats\":{}}}",
            prepared.generated.name,
            outcome.substitutions.total,
            outcome.robustness.to_json(),
            session.stats().to_json()
        );
    }
}

fn bench_json(jobs: usize) -> Result<(), String> {
    let suite = ipcp_bench::prepare_suite();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"bench\":\"table2_sweep\",\"jobs\":{jobs},\"programs\":["
    );
    for (i, p) in suite.iter().enumerate() {
        let start = std::time::Instant::now();
        let (seq_session, seq_totals) = ipcp_bench::run_sweep(&p.ir, 1);
        let seq_us = start.elapsed().as_micros();
        let start = std::time::Instant::now();
        let (par_session, par_totals) = ipcp_bench::run_sweep(&p.ir, jobs);
        let par_us = start.elapsed().as_micros();
        assert_eq!(
            seq_totals, par_totals,
            "parallel sweep diverged for {}",
            p.generated.name
        );
        let speedup = seq_us as f64 / par_us.max(1) as f64;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"program\":\"{}\",\"wall_us\":{{\"jobs_1\":{seq_us},\"jobs_n\":{par_us}}},\
             \"speedup\":{speedup:.2},\"phase_stats_jobs_1\":{},\"phase_stats_jobs_n\":{}}}",
            p.generated.name,
            seq_session.stats().to_json(),
            par_session.stats().to_json()
        );
    }
    out.push_str("]}");
    write_file("BENCH_parallel.json", &out)?;
    println!("wrote BENCH_parallel.json ({jobs} workers)");

    // Per-phase *self* times (span duration minus nested children) of
    // one traced default-configuration run per program.
    let obs = format!(
        "{{\"bench\":\"obs_self_time\",\"programs\":{}}}",
        obs_self_time_programs(&suite)
    );
    write_file("BENCH_obs.json", &obs)?;
    println!("wrote BENCH_obs.json");
    Ok(())
}

/// The `programs` array of `BENCH_obs.json`: per-phase self times and
/// counters of one traced default-configuration run per suite program.
fn obs_self_time_programs(suite: &[ipcp_bench::PreparedProgram]) -> String {
    let mut obs = String::from("[");
    for (i, p) in suite.iter().enumerate() {
        let sink = TraceSink::new();
        p.session()
            .analyze_checked_obs(&AnalysisConfig::default(), &sink)
            .expect("unlimited fuel never exhausts");
        let snapshot = sink.snapshot();
        if i > 0 {
            obs.push(',');
        }
        let _ = write!(
            obs,
            "{{\"program\":\"{}\",\"self_time_us\":{{",
            p.generated.name
        );
        for (j, (name, us)) in snapshot.self_times_us().iter().enumerate() {
            if j > 0 {
                obs.push(',');
            }
            let _ = write!(obs, "\"{name}\":{us}");
        }
        obs.push_str("},\"counters\":{");
        for (j, (name, n)) in snapshot.counters.iter().enumerate() {
            if j > 0 {
                obs.push(',');
            }
            let _ = write!(obs, "\"{name}\":{n}");
        }
        obs.push_str("}}");
    }
    obs.push(']');
    obs
}

/// The observability overhead gate (`--obs-bench`): analyze every suite
/// program with tracing off and with a recording [`TraceSink`] (which
/// now also feeds the latency histograms), min-of-`REPEATS` per variant
/// over fresh sessions, and fail unless the traced total stays within
/// 5% of the plain total. Writes `BENCH_obs.json` with the per-phase
/// self-time section plus the measured overhead.
fn obs_bench() -> Result<(), String> {
    const REPEATS: u32 = 7;
    const TARGET_PCT: f64 = 5.0;
    let suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig::default();

    let mut programs = String::from("[");
    let (mut plain_total, mut traced_total) = (0u128, 0u128);
    for (i, p) in suite.iter().enumerate() {
        let mut plain_us = u128::MAX;
        let mut traced_us = u128::MAX;
        let mut want = None;
        for _ in 0..REPEATS {
            let session = AnalysisSession::new(&p.ir);
            let start = std::time::Instant::now();
            let outcome = std::hint::black_box(
                session
                    .analyze_checked(&config)
                    .expect("unlimited fuel never exhausts"),
            );
            plain_us = plain_us.min(start.elapsed().as_micros());

            let sink = TraceSink::new();
            let session = AnalysisSession::new(&p.ir);
            let start = std::time::Instant::now();
            let traced = std::hint::black_box(
                session
                    .analyze_checked_obs(&config, &sink)
                    .expect("unlimited fuel never exhausts"),
            );
            traced_us = traced_us.min(start.elapsed().as_micros());
            let got = (traced.substitutions.total, traced.constant_slot_count());
            let plain_key = (outcome.substitutions.total, outcome.constant_slot_count());
            if got != plain_key {
                return Err(format!(
                    "{}: traced outcome diverged from plain: {got:?} vs {plain_key:?}",
                    p.generated.name
                ));
            }
            match want {
                None => want = Some(got),
                Some(w) if w == got => {}
                Some(w) => {
                    return Err(format!(
                        "{}: outcome drifted across repeats: {got:?} vs {w:?}",
                        p.generated.name
                    ));
                }
            }
        }
        plain_total += plain_us;
        traced_total += traced_us;
        if i > 0 {
            programs.push(',');
        }
        let _ = write!(
            programs,
            "{{\"program\":\"{}\",\"plain_us\":{plain_us},\"traced_us\":{traced_us}}}",
            p.generated.name
        );
    }
    programs.push(']');

    let overhead_pct =
        (traced_total as f64 - plain_total as f64) / plain_total.max(1) as f64 * 100.0;
    let out = format!(
        "{{\"bench\":\"obs_self_time\",\"programs\":{},\
         \"overhead\":{{\"repeats\":{REPEATS},\"plain_total_us\":{plain_total},\
         \"traced_total_us\":{traced_total},\"overhead_pct\":{overhead_pct:.2},\
         \"target_pct\":{TARGET_PCT},\"programs\":{programs}}}}}",
        obs_self_time_programs(&suite)
    );
    write_file("BENCH_obs.json", &out)?;
    println!(
        "wrote BENCH_obs.json (plain {plain_total}us, traced {traced_total}us, \
         overhead {overhead_pct:.2}% [target <={TARGET_PCT}%], min of {REPEATS} repeats)"
    );
    if overhead_pct > TARGET_PCT {
        return Err(format!(
            "observability overhead {overhead_pct:.2}% exceeds the {TARGET_PCT}% budget \
             (plain {plain_total}us vs traced {traced_total}us)"
        ));
    }
    Ok(())
}

fn trace_suite(path: &str) -> Result<(), String> {
    let suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig::default();
    let mut snapshots: Vec<(String, TraceSnapshot)> = Vec::new();
    for p in &suite {
        let sink = TraceSink::new();
        p.session()
            .analyze_checked_obs(&config, &sink)
            .expect("unlimited fuel never exhausts");
        snapshots.push((p.generated.name.clone(), sink.snapshot()));
    }
    let parts: Vec<(&str, &TraceSnapshot)> =
        snapshots.iter().map(|(n, s)| (n.as_str(), s)).collect();
    let json = chrome_trace_json_multi(&parts);
    let stats = validate_chrome_trace(&json).expect("exporter emits valid Chrome trace JSON");
    write_file(path, &json)?;
    println!(
        "wrote {path} ({} events, {} spans, {} threads)",
        stats.events, stats.spans, stats.threads
    );
    Ok(())
}

/// Runs the 8-configuration sweep over the suite through a disk cache
/// at `dir`: one cold pass against an empty cache, then one warm pass
/// with fresh sessions against the populated cache. Substitution totals
/// must be bit-identical across the passes; the wall-clock of both and
/// the cache traffic go to `BENCH_cache.json`.
fn cache_bench(dir: &str) -> Result<(), String> {
    let open = |d: &str| -> Result<Arc<DiskCache>, String> {
        DiskCache::open(d)
            .map(Arc::new)
            .map_err(|e| format!("cannot open cache `{d}`: {e}"))
    };
    // Start from a genuinely cold cache even if the directory survives
    // from an earlier invocation.
    open(dir)?.clear();

    let suite = ipcp_bench::prepare_suite();
    let configs = ipcp_bench::sweep_configs(1);
    // One pass: fresh sessions (no in-memory reuse across passes), all
    // sharing one disk cache handle, every configuration sequentially.
    let run_pass = |cache: &Arc<DiskCache>| -> Vec<(u128, Vec<usize>)> {
        suite
            .iter()
            .map(|p| {
                let mut session = AnalysisSession::new(&p.ir);
                session.attach_disk_cache(Arc::clone(cache));
                let start = std::time::Instant::now();
                let totals: Vec<usize> = configs
                    .iter()
                    .map(|(_, c)| session.analyze(c).substitutions.total)
                    .collect();
                (start.elapsed().as_micros(), totals)
            })
            .collect()
    };

    let cold_cache = open(dir)?;
    let cold = run_pass(&cold_cache);
    let warm_cache = open(dir)?;
    let warm = run_pass(&warm_cache);

    let mut out = String::new();
    let _ = write!(out, "{{\"bench\":\"cache_warm_start\",\"programs\":[");
    let (mut cold_total, mut warm_total) = (0u128, 0u128);
    for (i, p) in suite.iter().enumerate() {
        let (cold_us, cold_totals) = &cold[i];
        let (warm_us, warm_totals) = &warm[i];
        if cold_totals != warm_totals {
            return Err(format!(
                "warm sweep diverged from cold for {}: {cold_totals:?} vs {warm_totals:?}",
                p.generated.name
            ));
        }
        cold_total += cold_us;
        warm_total += warm_us;
        let speedup = *cold_us as f64 / (*warm_us).max(1) as f64;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"program\":\"{}\",\"cold_us\":{cold_us},\"warm_us\":{warm_us},\
             \"speedup\":{speedup:.2}}}",
            p.generated.name
        );
    }
    let speedup = cold_total as f64 / warm_total.max(1) as f64;
    let _ = write!(
        out,
        "],\"total\":{{\"cold_us\":{cold_total},\"warm_us\":{warm_total},\
         \"speedup\":{speedup:.2}}},\"cold_stats\":{},\"warm_stats\":{}}}",
        cold_cache.stats().to_json(),
        warm_cache.stats().to_json()
    );
    write_file("BENCH_cache.json", &out)?;
    println!(
        "wrote BENCH_cache.json (cold {cold_total}us, warm {warm_total}us, \
         speedup {speedup:.2}x; warm cache: {})",
        warm_cache.stats()
    );
    Ok(())
}

/// Quantifies what the generic value-context engine costs against the
/// code it replaced, and writes `BENCH_framework.json`:
///
/// 1. the full Table-2 sweep through the engine, cell-checked against
///    the golden pins (a wrong number fails the run),
/// 2. a solver-only microbenchmark — the verbatim pre-refactor loop
///    ([`ipcp_bench::legacy_solve`]) vs the engine-driven
///    [`ipcp_core::solve`] on identical inputs with identical results —
///    reporting the relative overhead (target: ≤5% on the sweep), and
/// 3. the conditional-propagation sweep, reported separately: `cond`
///    does strictly more work (feasibility SCCP per context), so its
///    cost is not part of the legacy-parity budget.
fn framework_bench() -> Result<(), String> {
    let suite = ipcp_bench::prepare_suite();
    let configs = ipcp_bench::table2_configs();

    // Phase 1: the Table-2 sweep through fresh sessions, pinned.
    let mut sweep = String::from("[");
    let start = std::time::Instant::now();
    for (i, (p, (name, expect))) in suite
        .iter()
        .zip(ipcp_bench::TABLE2_GOLDEN.iter())
        .enumerate()
    {
        let session = AnalysisSession::new(&p.ir);
        let totals: Vec<usize> = configs
            .iter()
            .map(|(_, c)| session.analyze(c).substitutions.total)
            .collect();
        if totals != expect.to_vec() {
            return Err(format!(
                "{name}: engine sweep diverged from golden pins: {totals:?} vs {expect:?}"
            ));
        }
        if i > 0 {
            sweep.push(',');
        }
        let cells: Vec<String> = totals.iter().map(usize::to_string).collect();
        let _ = write!(
            sweep,
            "{{\"program\":\"{name}\",\"totals\":[{}]}}",
            cells.join(",")
        );
    }
    let sweep_us = start.elapsed().as_micros();
    sweep.push(']');

    // Phase 2: solver-only microbenchmark, legacy loop vs engine.
    const REPEATS: u32 = 30;
    let mut micro = String::from("[");
    let (mut legacy_total, mut engine_total) = (0u128, 0u128);
    for (i, p) in suite.iter().enumerate() {
        let inputs = ipcp_bench::solver_inputs(&p.ir, true);
        let engine = ipcp_core::solve(&inputs.program, &inputs.cg, &inputs.modref, &inputs.jfs);
        let legacy =
            ipcp_bench::legacy_solve(&inputs.program, &inputs.cg, &inputs.modref, &inputs.jfs);
        ipcp_bench::assert_solver_agreement(&inputs.program, &engine, &legacy);

        let start = std::time::Instant::now();
        for _ in 0..REPEATS {
            std::hint::black_box(ipcp_bench::legacy_solve(
                &inputs.program,
                &inputs.cg,
                &inputs.modref,
                &inputs.jfs,
            ));
        }
        let legacy_us = start.elapsed().as_micros();
        let start = std::time::Instant::now();
        for _ in 0..REPEATS {
            std::hint::black_box(ipcp_core::solve(
                &inputs.program,
                &inputs.cg,
                &inputs.modref,
                &inputs.jfs,
            ));
        }
        let engine_us = start.elapsed().as_micros();
        legacy_total += legacy_us;
        engine_total += engine_us;
        if i > 0 {
            micro.push(',');
        }
        let _ = write!(
            micro,
            "{{\"program\":\"{}\",\"legacy_us\":{legacy_us},\"engine_us\":{engine_us},\
             \"iterations\":{}}}",
            p.generated.name,
            engine.iterations()
        );
    }
    micro.push(']');
    // Two views of the same delta: relative to the solver phase alone,
    // and amortized over the full Table-2 sweep it is part of — the
    // ≤5% acceptance target applies to the sweep, where the solver is a
    // sub-millisecond slice of a multi-second pipeline.
    let solver_overhead_pct =
        (engine_total as f64 - legacy_total as f64) / legacy_total.max(1) as f64 * 100.0;
    let extra_us_per_solve = (engine_total as f64 - legacy_total as f64) / f64::from(REPEATS);
    let sweep_overhead_pct =
        extra_us_per_solve * configs.len() as f64 / sweep_us.max(1) as f64 * 100.0;

    // Phase 3: conditional propagation, costed separately.
    let mut cond = String::from("[");
    let cond_config = AnalysisConfig::conditional();
    let start = std::time::Instant::now();
    for (i, p) in suite.iter().enumerate() {
        let outcome = p.session().analyze(&cond_config);
        if i > 0 {
            cond.push(',');
        }
        let _ = write!(
            cond,
            "{{\"program\":\"{}\",\"substitutions\":{},\"pruned_call_edges\":{}}}",
            p.generated.name, outcome.substitutions.total, outcome.stats.pruned_call_edges
        );
    }
    let cond_us = start.elapsed().as_micros();
    cond.push(']');

    let out = format!(
        "{{\"bench\":\"framework_overhead\",\
         \"table2_sweep\":{{\"all_pinned\":true,\"wall_us\":{sweep_us},\"programs\":{sweep}}},\
         \"solver_microbench\":{{\"repeats\":{REPEATS},\"legacy_total_us\":{legacy_total},\
         \"engine_total_us\":{engine_total},\"solver_overhead_pct\":{solver_overhead_pct:.2},\
         \"sweep_overhead_pct\":{sweep_overhead_pct:.4},\"target_sweep_pct\":5.0,\
         \"programs\":{micro}}},\
         \"cond_sweep\":{{\"wall_us\":{cond_us},\"programs\":{cond}}}}}"
    );
    write_file("BENCH_framework.json", &out)?;
    println!(
        "wrote BENCH_framework.json (sweep pinned in {sweep_us}us; engine vs legacy loop: \
         {solver_overhead_pct:.2}% on the solver phase alone, {sweep_overhead_pct:.4}% \
         amortized over the Table-2 sweep [target <=5%]; cond sweep {cond_us}us)"
    );
    Ok(())
}

/// Resets the process's peak-RSS high-water mark so per-run readings
/// don't just echo the largest earlier run. Best effort: requires Linux
/// ≥ 4.0; on failure subsequent readings are cumulative (still an upper
/// bound, and sizes ascend, so the last reading per size is meaningful).
fn reset_peak_rss() {
    #[cfg(target_os = "linux")]
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// The scaling study (`--scale-bench [max_procs]`): analyze generated
/// programs of 1k/10k/100k procedures (capped at `max_procs`) at worker
/// counts {1, 4, 8}, recording wall-clock, peak RSS, the jump-function
/// arena high-water mark, and the growth exponent between sizes —
/// written to `BENCH_scale.json`. Substitution totals must be
/// bit-identical across worker counts; growth at jobs=1 must stay
/// sub-quadratic (exponent < 2).
fn scale_bench(max_procs: usize) -> Result<(), String> {
    const SEED: u64 = 0xC0DE;
    let sizes: Vec<usize> = [1_000usize, 10_000, 100_000]
        .into_iter()
        .filter(|&n| n <= max_procs)
        .collect();
    if sizes.is_empty() {
        return Err(format!(
            "--scale-bench {max_procs}: below the smallest size (1000)"
        ));
    }
    // The default sweep; `IPCP_SCALE_JOBS=1,2` (comma-separated) swaps
    // in another worker-count list — CI's jobs-2 smoke uses this. The
    // first entry is the substitution-equality baseline.
    let jobs_sweep: Vec<usize> = std::env::var("IPCP_SCALE_JOBS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4, 8]);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let shape = ipcp_suite::ScaleSpec::with_procs(sizes[sizes.len() - 1], SEED);
    let mut out = format!(
        "{{\"bench\":\"scale\",\"available_parallelism\":{cores},\
         \"generator\":{{\"seed\":{SEED},\"tower_height\":{},\"fanout\":{},\"globals\":{}}},\
         \"sizes\":[",
        shape.tower_height, shape.fanout, shape.globals
    );
    // (size, jobs=1 analysis wall) pairs feeding the growth exponents.
    let mut seq_walls: Vec<(usize, u128)> = Vec::new();
    for (i, &procs) in sizes.iter().enumerate() {
        let spec = ipcp_suite::ScaleSpec::with_procs(procs, SEED);
        let generated = ipcp_suite::generate_scale(&spec);
        let start = std::time::Instant::now();
        let ir = ipcp_ir::compile_to_ir(&generated.source)
            .map_err(|e| format!("{}: {e:?}", generated.name))?;
        let compile_us = start.elapsed().as_micros();

        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"procs\":{procs},\"ir_procs\":{},\"compile_us\":{compile_us},\"runs\":[",
            ir.procs.len()
        );
        // One discarded warm-up analysis per size: the first run over a
        // fresh program pays allocator growth and first-touch page
        // faults for the whole working set; without the warm-up that
        // one-time cost lands on whichever jobs value runs first and
        // swamps the comparison.
        {
            let config = AnalysisConfig::default();
            let session = AnalysisSession::new(&ir);
            let _ = session.analyze(&config);
        }
        let mut baseline: Option<usize> = None;
        let mut walls: Vec<u128> = Vec::new();
        for (j, &jobs) in jobs_sweep.iter().enumerate() {
            reset_peak_rss();
            let config = AnalysisConfig {
                jobs,
                ..AnalysisConfig::default()
            };
            let session = AnalysisSession::new(&ir);
            let start = std::time::Instant::now();
            let outcome = session.analyze(&config);
            let wall_us = start.elapsed().as_micros();
            let subs = outcome.substitutions.total;
            match baseline {
                None => baseline = Some(subs),
                Some(want) if want == subs => {}
                Some(want) => {
                    return Err(format!(
                        "{procs} procs: jobs={jobs} diverged ({subs} vs {want} substitutions)"
                    ));
                }
            }
            if jobs == 1 {
                seq_walls.push((procs, wall_us));
            }
            walls.push(wall_us);
            let peak_kib = ipcp_core::obs::peak_rss_bytes().map_or(0, |b| b / 1024);
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"jobs\":{jobs},\"wall_us\":{wall_us},\"peak_rss_kib\":{peak_kib},\
                 \"arena_high_water\":{},\"substitutions\":{subs}}}",
                ipcp_core::arena_high_water()
            );
            println!(
                "scale {procs} procs, jobs={jobs}: {wall_us}us, peak RSS {peak_kib} KiB, \
                 {subs} substitutions"
            );
            if std::env::var_os("IPCP_SCALE_PHASES").is_some() {
                println!("  phases: {}", session.stats().to_json());
            }
        }
        out.push(']');
        if let Some(k) = jobs_sweep.iter().position(|&j| j == 4) {
            let speedup4 = walls[0] as f64 / walls[k].max(1) as f64;
            let _ = write!(out, ",\"speedup_jobs4\":{speedup4:.2}");
        }
        out.push('}');
    }
    out.push_str("],\"growth_jobs1\":[");
    for (i, pair) in seq_walls.windows(2).enumerate() {
        let (size_a, wall_a) = pair[0];
        let (size_b, wall_b) = pair[1];
        let exponent =
            (wall_b as f64 / wall_a.max(1) as f64).ln() / (size_b as f64 / size_a as f64).ln();
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"from_procs\":{size_a},\"to_procs\":{size_b},\"exponent\":{exponent:.3}}}"
        );
        println!("scale growth {size_a} -> {size_b} procs: exponent {exponent:.3}");
        if exponent >= 2.0 {
            return Err(format!(
                "super-quadratic growth from {size_a} to {size_b} procs (exponent {exponent:.3})"
            ));
        }
    }
    out.push_str("]}");
    write_file("BENCH_scale.json", &out)?;
    println!(
        "wrote BENCH_scale.json ({} sizes, jobs {jobs_sweep:?})",
        sizes.len()
    );
    Ok(())
}

/// Writes a `generate_scale` corpus to disk (`--emit-scale [procs]
/// [path]`) so shell-driven scenarios — CI's `ipcp why` edit test —
/// can run the scaling generator's programs through the CLI.
fn emit_scale(procs: usize, path: &str) -> Result<(), String> {
    const SEED: u64 = 0xC0DE;
    let generated = ipcp_suite::generate_scale(&ipcp_suite::ScaleSpec::with_procs(procs, SEED));
    write_file(path, &generated.source)?;
    println!(
        "wrote {path} ({}, {} bytes)",
        generated.name,
        generated.source.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--framework-bench") {
        return framework_bench();
    }
    if args.iter().any(|a| a == "--obs-bench") {
        return obs_bench();
    }
    if let Some(i) = args.iter().position(|a| a == "--emit-scale") {
        let procs = args
            .get(i + 1)
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(1_000);
        let path = args
            .get(i + 2)
            .filter(|p| !p.starts_with("--"))
            .map_or("scale.mf", String::as_str);
        return emit_scale(procs, path);
    }
    if let Some(i) = args.iter().position(|a| a == "--scale-bench") {
        let max_procs = args
            .get(i + 1)
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(100_000);
        return scale_bench(max_procs);
    }
    if let Some(i) = args.iter().position(|a| a == "--robustness") {
        let fuel = args
            .get(i + 1)
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(10_000);
        robustness_report(fuel);
        return Ok(());
    }
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "trace.json".into());
        return trace_suite(&path);
    }
    if let Some(i) = args.iter().position(|a| a == "--bench-json") {
        let jobs = args
            .get(i + 1)
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| ipcp_core::Parallelism::auto().effective());
        return bench_json(jobs.max(1));
    }
    if let Some(i) = args.iter().position(|a| a == "--cache-bench") {
        let dir = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("ipcp-cache-bench-{}", std::process::id()))
                    .display()
                    .to_string()
            });
        return cache_bench(&dir);
    }
    let timing = args.iter().any(|a| a == "--timing");
    let jobs = ipcp_core::Parallelism::auto().effective();
    let suite = ipcp_bench::prepare_suite();
    println!("{}", ipcp_bench::render_table1(&suite));
    println!("{}", ipcp_bench::render_table2(&suite, jobs));
    println!("{}", ipcp_bench::render_table3(&suite, jobs));
    if timing {
        println!("{}", ipcp_bench::render_timings(&suite));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("report: {e}");
            ExitCode::FAILURE
        }
    }
}
