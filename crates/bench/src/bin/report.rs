//! Regenerates all evaluation tables side by side with the paper.
//!
//! The suite is generated, compiled, and fingerprinted exactly once:
//! every table reuses the same prepared programs and their analysis
//! sessions, so configuration-independent artifacts (call graph,
//! MOD/REF, SSA, return jump functions) are built once per program
//! rather than once per table column.
//!
//! Pass `--timing` to also print single-run analysis times per
//! configuration (Criterion benches give the careful numbers).
//! Pass `--robustness [fuel]` to instead emit one JSON line per suite
//! program describing how a fuel-limited run (default 10000 units)
//! degraded — the machine-readable face of the resource-governance
//! subsystem — including a `phase_stats` block with the session's
//! per-phase wall-clock and cache traffic.
//! Pass `--bench-json [jobs]` to instead run the 8-configuration
//! Table-2 sweep per program at `jobs = 1` and `jobs = N` (default:
//! every available core) and write `BENCH_parallel.json` — sweep
//! wall-clock, speedup, and the per-phase wall/span stats at both
//! worker counts — plus `BENCH_obs.json` with the traced per-phase
//! *self* times and counters of one default-configuration run per
//! program.
//! Pass `--trace [path]` to instead run the suite with a recording
//! observability sink and write one combined Chrome trace-event JSON
//! file (default `trace.json`; one Chrome process per program),
//! validated before it is written.
//! Pass `--cache-bench [dir]` to instead run the 8-configuration sweep
//! twice through the persistent disk cache — once cold (empty cache,
//! fresh sessions) and once warm (fresh sessions, populated cache) —
//! assert the substitution totals are bit-identical, and write
//! Pass `--framework-bench` to check the generic value-context engine
//! against the golden pins and the pre-refactor solver loop, writing
//! `BENCH_framework.json` with the measured overhead (plus the
//! separately-costed conditional-propagation sweep).
//!
//! `BENCH_cache.json` with per-program and total cold/warm wall-clock
//! and speedup.
use ipcp_core::obs::{chrome_trace_json_multi, validate_chrome_trace, TraceSink, TraceSnapshot};
use ipcp_core::{AnalysisConfig, AnalysisSession, DiskCache};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

/// `std::fs::write` with the failure turned into a diagnostic instead of
/// a panic; `main` converts the error into a nonzero exit code.
fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write `{path}`: {e}"))
}

fn robustness_report(fuel: u64) {
    let suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig {
        fuel: Some(fuel),
        ..Default::default()
    };
    for prepared in &suite {
        let session = prepared.session();
        let outcome = session.analyze(&config);
        println!(
            "{{\"program\":\"{}\",\"substitutions\":{},\"report\":{},\"phase_stats\":{}}}",
            prepared.generated.name,
            outcome.substitutions.total,
            outcome.robustness.to_json(),
            session.stats().to_json()
        );
    }
}

fn bench_json(jobs: usize) -> Result<(), String> {
    let suite = ipcp_bench::prepare_suite();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"bench\":\"table2_sweep\",\"jobs\":{jobs},\"programs\":["
    );
    for (i, p) in suite.iter().enumerate() {
        let start = std::time::Instant::now();
        let (seq_session, seq_totals) = ipcp_bench::run_sweep(&p.ir, 1);
        let seq_us = start.elapsed().as_micros();
        let start = std::time::Instant::now();
        let (par_session, par_totals) = ipcp_bench::run_sweep(&p.ir, jobs);
        let par_us = start.elapsed().as_micros();
        assert_eq!(
            seq_totals, par_totals,
            "parallel sweep diverged for {}",
            p.generated.name
        );
        let speedup = seq_us as f64 / par_us.max(1) as f64;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"program\":\"{}\",\"wall_us\":{{\"jobs_1\":{seq_us},\"jobs_n\":{par_us}}},\
             \"speedup\":{speedup:.2},\"phase_stats_jobs_1\":{},\"phase_stats_jobs_n\":{}}}",
            p.generated.name,
            seq_session.stats().to_json(),
            par_session.stats().to_json()
        );
    }
    out.push_str("]}");
    write_file("BENCH_parallel.json", &out)?;
    println!("wrote BENCH_parallel.json ({jobs} workers)");

    // Per-phase *self* times (span duration minus nested children) of
    // one traced default-configuration run per program.
    let mut obs = String::from("{\"bench\":\"obs_self_time\",\"programs\":[");
    for (i, p) in suite.iter().enumerate() {
        let sink = TraceSink::new();
        p.session()
            .analyze_checked_obs(&AnalysisConfig::default(), &sink)
            .expect("unlimited fuel never exhausts");
        let snapshot = sink.snapshot();
        if i > 0 {
            obs.push(',');
        }
        let _ = write!(
            obs,
            "{{\"program\":\"{}\",\"self_time_us\":{{",
            p.generated.name
        );
        for (j, (name, us)) in snapshot.self_times_us().iter().enumerate() {
            if j > 0 {
                obs.push(',');
            }
            let _ = write!(obs, "\"{name}\":{us}");
        }
        obs.push_str("},\"counters\":{");
        for (j, (name, n)) in snapshot.counters.iter().enumerate() {
            if j > 0 {
                obs.push(',');
            }
            let _ = write!(obs, "\"{name}\":{n}");
        }
        obs.push_str("}}");
    }
    obs.push_str("]}");
    write_file("BENCH_obs.json", &obs)?;
    println!("wrote BENCH_obs.json");
    Ok(())
}

fn trace_suite(path: &str) -> Result<(), String> {
    let suite = ipcp_bench::prepare_suite();
    let config = AnalysisConfig::default();
    let mut snapshots: Vec<(String, TraceSnapshot)> = Vec::new();
    for p in &suite {
        let sink = TraceSink::new();
        p.session()
            .analyze_checked_obs(&config, &sink)
            .expect("unlimited fuel never exhausts");
        snapshots.push((p.generated.name.clone(), sink.snapshot()));
    }
    let parts: Vec<(&str, &TraceSnapshot)> =
        snapshots.iter().map(|(n, s)| (n.as_str(), s)).collect();
    let json = chrome_trace_json_multi(&parts);
    let stats = validate_chrome_trace(&json).expect("exporter emits valid Chrome trace JSON");
    write_file(path, &json)?;
    println!(
        "wrote {path} ({} events, {} spans, {} threads)",
        stats.events, stats.spans, stats.threads
    );
    Ok(())
}

/// Runs the 8-configuration sweep over the suite through a disk cache
/// at `dir`: one cold pass against an empty cache, then one warm pass
/// with fresh sessions against the populated cache. Substitution totals
/// must be bit-identical across the passes; the wall-clock of both and
/// the cache traffic go to `BENCH_cache.json`.
fn cache_bench(dir: &str) -> Result<(), String> {
    let open = |d: &str| -> Result<Arc<DiskCache>, String> {
        DiskCache::open(d)
            .map(Arc::new)
            .map_err(|e| format!("cannot open cache `{d}`: {e}"))
    };
    // Start from a genuinely cold cache even if the directory survives
    // from an earlier invocation.
    open(dir)?.clear();

    let suite = ipcp_bench::prepare_suite();
    let configs = ipcp_bench::sweep_configs(1);
    // One pass: fresh sessions (no in-memory reuse across passes), all
    // sharing one disk cache handle, every configuration sequentially.
    let run_pass = |cache: &Arc<DiskCache>| -> Vec<(u128, Vec<usize>)> {
        suite
            .iter()
            .map(|p| {
                let mut session = AnalysisSession::new(&p.ir);
                session.attach_disk_cache(Arc::clone(cache));
                let start = std::time::Instant::now();
                let totals: Vec<usize> = configs
                    .iter()
                    .map(|(_, c)| session.analyze(c).substitutions.total)
                    .collect();
                (start.elapsed().as_micros(), totals)
            })
            .collect()
    };

    let cold_cache = open(dir)?;
    let cold = run_pass(&cold_cache);
    let warm_cache = open(dir)?;
    let warm = run_pass(&warm_cache);

    let mut out = String::new();
    let _ = write!(out, "{{\"bench\":\"cache_warm_start\",\"programs\":[");
    let (mut cold_total, mut warm_total) = (0u128, 0u128);
    for (i, p) in suite.iter().enumerate() {
        let (cold_us, cold_totals) = &cold[i];
        let (warm_us, warm_totals) = &warm[i];
        if cold_totals != warm_totals {
            return Err(format!(
                "warm sweep diverged from cold for {}: {cold_totals:?} vs {warm_totals:?}",
                p.generated.name
            ));
        }
        cold_total += cold_us;
        warm_total += warm_us;
        let speedup = *cold_us as f64 / (*warm_us).max(1) as f64;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"program\":\"{}\",\"cold_us\":{cold_us},\"warm_us\":{warm_us},\
             \"speedup\":{speedup:.2}}}",
            p.generated.name
        );
    }
    let speedup = cold_total as f64 / warm_total.max(1) as f64;
    let _ = write!(
        out,
        "],\"total\":{{\"cold_us\":{cold_total},\"warm_us\":{warm_total},\
         \"speedup\":{speedup:.2}}},\"cold_stats\":{},\"warm_stats\":{}}}",
        cold_cache.stats().to_json(),
        warm_cache.stats().to_json()
    );
    write_file("BENCH_cache.json", &out)?;
    println!(
        "wrote BENCH_cache.json (cold {cold_total}us, warm {warm_total}us, \
         speedup {speedup:.2}x; warm cache: {})",
        warm_cache.stats()
    );
    Ok(())
}

/// Quantifies what the generic value-context engine costs against the
/// code it replaced, and writes `BENCH_framework.json`:
///
/// 1. the full Table-2 sweep through the engine, cell-checked against
///    the golden pins (a wrong number fails the run),
/// 2. a solver-only microbenchmark — the verbatim pre-refactor loop
///    ([`ipcp_bench::legacy_solve`]) vs the engine-driven
///    [`ipcp_core::solve`] on identical inputs with identical results —
///    reporting the relative overhead (target: ≤5% on the sweep), and
/// 3. the conditional-propagation sweep, reported separately: `cond`
///    does strictly more work (feasibility SCCP per context), so its
///    cost is not part of the legacy-parity budget.
fn framework_bench() -> Result<(), String> {
    let suite = ipcp_bench::prepare_suite();
    let configs = ipcp_bench::table2_configs();

    // Phase 1: the Table-2 sweep through fresh sessions, pinned.
    let mut sweep = String::from("[");
    let start = std::time::Instant::now();
    for (i, (p, (name, expect))) in suite
        .iter()
        .zip(ipcp_bench::TABLE2_GOLDEN.iter())
        .enumerate()
    {
        let session = AnalysisSession::new(&p.ir);
        let totals: Vec<usize> = configs
            .iter()
            .map(|(_, c)| session.analyze(c).substitutions.total)
            .collect();
        if totals != expect.to_vec() {
            return Err(format!(
                "{name}: engine sweep diverged from golden pins: {totals:?} vs {expect:?}"
            ));
        }
        if i > 0 {
            sweep.push(',');
        }
        let cells: Vec<String> = totals.iter().map(usize::to_string).collect();
        let _ = write!(
            sweep,
            "{{\"program\":\"{name}\",\"totals\":[{}]}}",
            cells.join(",")
        );
    }
    let sweep_us = start.elapsed().as_micros();
    sweep.push(']');

    // Phase 2: solver-only microbenchmark, legacy loop vs engine.
    const REPEATS: u32 = 30;
    let mut micro = String::from("[");
    let (mut legacy_total, mut engine_total) = (0u128, 0u128);
    for (i, p) in suite.iter().enumerate() {
        let inputs = ipcp_bench::solver_inputs(&p.ir, true);
        let engine = ipcp_core::solve(&inputs.program, &inputs.cg, &inputs.modref, &inputs.jfs);
        let legacy =
            ipcp_bench::legacy_solve(&inputs.program, &inputs.cg, &inputs.modref, &inputs.jfs);
        ipcp_bench::assert_solver_agreement(&inputs.program, &engine, &legacy);

        let start = std::time::Instant::now();
        for _ in 0..REPEATS {
            std::hint::black_box(ipcp_bench::legacy_solve(
                &inputs.program,
                &inputs.cg,
                &inputs.modref,
                &inputs.jfs,
            ));
        }
        let legacy_us = start.elapsed().as_micros();
        let start = std::time::Instant::now();
        for _ in 0..REPEATS {
            std::hint::black_box(ipcp_core::solve(
                &inputs.program,
                &inputs.cg,
                &inputs.modref,
                &inputs.jfs,
            ));
        }
        let engine_us = start.elapsed().as_micros();
        legacy_total += legacy_us;
        engine_total += engine_us;
        if i > 0 {
            micro.push(',');
        }
        let _ = write!(
            micro,
            "{{\"program\":\"{}\",\"legacy_us\":{legacy_us},\"engine_us\":{engine_us},\
             \"iterations\":{}}}",
            p.generated.name,
            engine.iterations()
        );
    }
    micro.push(']');
    // Two views of the same delta: relative to the solver phase alone,
    // and amortized over the full Table-2 sweep it is part of — the
    // ≤5% acceptance target applies to the sweep, where the solver is a
    // sub-millisecond slice of a multi-second pipeline.
    let solver_overhead_pct =
        (engine_total as f64 - legacy_total as f64) / legacy_total.max(1) as f64 * 100.0;
    let extra_us_per_solve = (engine_total as f64 - legacy_total as f64) / f64::from(REPEATS);
    let sweep_overhead_pct =
        extra_us_per_solve * configs.len() as f64 / sweep_us.max(1) as f64 * 100.0;

    // Phase 3: conditional propagation, costed separately.
    let mut cond = String::from("[");
    let cond_config = AnalysisConfig::conditional();
    let start = std::time::Instant::now();
    for (i, p) in suite.iter().enumerate() {
        let outcome = p.session().analyze(&cond_config);
        if i > 0 {
            cond.push(',');
        }
        let _ = write!(
            cond,
            "{{\"program\":\"{}\",\"substitutions\":{},\"pruned_call_edges\":{}}}",
            p.generated.name, outcome.substitutions.total, outcome.stats.pruned_call_edges
        );
    }
    let cond_us = start.elapsed().as_micros();
    cond.push(']');

    let out = format!(
        "{{\"bench\":\"framework_overhead\",\
         \"table2_sweep\":{{\"all_pinned\":true,\"wall_us\":{sweep_us},\"programs\":{sweep}}},\
         \"solver_microbench\":{{\"repeats\":{REPEATS},\"legacy_total_us\":{legacy_total},\
         \"engine_total_us\":{engine_total},\"solver_overhead_pct\":{solver_overhead_pct:.2},\
         \"sweep_overhead_pct\":{sweep_overhead_pct:.4},\"target_sweep_pct\":5.0,\
         \"programs\":{micro}}},\
         \"cond_sweep\":{{\"wall_us\":{cond_us},\"programs\":{cond}}}}}"
    );
    write_file("BENCH_framework.json", &out)?;
    println!(
        "wrote BENCH_framework.json (sweep pinned in {sweep_us}us; engine vs legacy loop: \
         {solver_overhead_pct:.2}% on the solver phase alone, {sweep_overhead_pct:.4}% \
         amortized over the Table-2 sweep [target <=5%]; cond sweep {cond_us}us)"
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--framework-bench") {
        return framework_bench();
    }
    if let Some(i) = args.iter().position(|a| a == "--robustness") {
        let fuel = args
            .get(i + 1)
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(10_000);
        robustness_report(fuel);
        return Ok(());
    }
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "trace.json".into());
        return trace_suite(&path);
    }
    if let Some(i) = args.iter().position(|a| a == "--bench-json") {
        let jobs = args
            .get(i + 1)
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| ipcp_core::Parallelism::auto().effective());
        return bench_json(jobs.max(1));
    }
    if let Some(i) = args.iter().position(|a| a == "--cache-bench") {
        let dir = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("ipcp-cache-bench-{}", std::process::id()))
                    .display()
                    .to_string()
            });
        return cache_bench(&dir);
    }
    let timing = args.iter().any(|a| a == "--timing");
    let jobs = ipcp_core::Parallelism::auto().effective();
    let suite = ipcp_bench::prepare_suite();
    println!("{}", ipcp_bench::render_table1(&suite));
    println!("{}", ipcp_bench::render_table2(&suite, jobs));
    println!("{}", ipcp_bench::render_table3(&suite, jobs));
    if timing {
        println!("{}", ipcp_bench::render_timings(&suite));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("report: {e}");
            ExitCode::FAILURE
        }
    }
}
