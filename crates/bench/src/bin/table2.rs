//! Regenerates the paper's Table 2 over the synthetic suite.
fn main() {
    let suite = ipcp_bench::prepare_suite();
    print!("{}", ipcp_bench::render_table2(&suite));
}
