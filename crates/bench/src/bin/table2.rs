//! Regenerates the paper's Table 2 over the synthetic suite, driving
//! one analysis session per program so shared artifacts are built once.
fn main() {
    let mut suite = ipcp_bench::prepare_suite();
    print!("{}", ipcp_bench::render_table2(&mut suite));
}
