//! Regenerates the paper's Table 1 over the synthetic suite.
fn main() {
    let suite = ipcp_bench::prepare_suite();
    print!("{}", ipcp_bench::render_table1(&suite));
}
