//! Regenerates the paper's Table 3 over the synthetic suite, driving
//! one analysis session per program so shared artifacts are built once;
//! columns fan out over every available core (the numbers are identical
//! at any worker count).
fn main() {
    let suite = ipcp_bench::prepare_suite();
    let jobs = ipcp_core::Parallelism::auto().effective();
    print!("{}", ipcp_bench::render_table3(&suite, jobs));
}
