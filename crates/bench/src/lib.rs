//! # ipcp-bench — experiment harness
//!
//! Regenerates the paper's evaluation artifacts over the synthetic
//! benchmark suite:
//!
//! * `table1` binary — program characteristics (paper Table 1),
//! * `table2` binary — constants substituted per jump function, with and
//!   without return jump functions (paper Table 2),
//! * `table3` binary — MOD information, complete propagation, and the
//!   intraprocedural baseline (paper Table 3),
//! * `report` binary — all three side by side with the paper's numbers,
//! * Criterion benches (`benches/`) — the §3.1.5 cost story: analysis
//!   time per jump function kind, per-phase costs, and scaling sweeps.

use ipcp_core::{analyze, analyze_reference, AnalysisConfig, AnalysisSession, JumpFunctionKind};
use ipcp_suite::{all_specs, generate, paper_row, program_stats, GeneratedProgram, PAPER_SIZES};
use std::fmt::Write as _;

pub mod framework;

pub use framework::{
    assert_solver_agreement, legacy_solve, solver_inputs, SolverInputs, TABLE2_GOLDEN,
    TABLE3_GOLDEN,
};

/// A generated benchmark plus its compiled IR and an open analysis
/// session, so every table column measured over the program reuses the
/// configuration-independent artifacts (call graph, MOD/REF, SSA,
/// return jump functions) instead of recomputing them per column.
pub struct PreparedProgram {
    /// The generated source.
    pub generated: GeneratedProgram,
    /// Compiled IR.
    pub ir: ipcp_ir::Program,
    session: AnalysisSession,
}

impl PreparedProgram {
    /// The program's memoized analysis session.
    pub fn session(&self) -> &AnalysisSession {
        &self.session
    }
}

/// Generates and compiles the whole suite, opening one session per
/// program.
pub fn prepare_suite() -> Vec<PreparedProgram> {
    all_specs()
        .iter()
        .map(|spec| {
            let generated = generate(spec);
            let ir = ipcp_ir::compile_to_ir(&generated.source)
                .unwrap_or_else(|e| panic!("{} does not compile: {e}", generated.name));
            let session = AnalysisSession::new(&ir);
            PreparedProgram {
                generated,
                ir,
                session,
            }
        })
        .collect()
}

/// The Table 2 configurations, in column order.
pub fn table2_configs() -> Vec<(&'static str, AnalysisConfig)> {
    let base = AnalysisConfig::default();
    vec![
        (
            "poly+rjf",
            AnalysisConfig {
                jump_function: JumpFunctionKind::Polynomial,
                ..base
            },
        ),
        (
            "pass+rjf",
            AnalysisConfig {
                jump_function: JumpFunctionKind::PassThrough,
                ..base
            },
        ),
        (
            "intra+rjf",
            AnalysisConfig {
                jump_function: JumpFunctionKind::IntraproceduralConstant,
                ..base
            },
        ),
        (
            "lit+rjf",
            AnalysisConfig {
                jump_function: JumpFunctionKind::Literal,
                ..base
            },
        ),
        (
            "poly-rjf",
            AnalysisConfig {
                jump_function: JumpFunctionKind::Polynomial,
                return_jump_functions: false,
                ..base
            },
        ),
        (
            "pass-rjf",
            AnalysisConfig {
                jump_function: JumpFunctionKind::PassThrough,
                return_jump_functions: false,
                ..base
            },
        ),
    ]
}

/// The Table 3 configurations, in column order.
pub fn table3_configs() -> Vec<(&'static str, AnalysisConfig)> {
    let base = AnalysisConfig::default();
    vec![
        (
            "poly w/o MOD",
            AnalysisConfig {
                mod_info: false,
                ..base
            },
        ),
        ("poly w/ MOD", base),
        (
            "complete",
            AnalysisConfig {
                complete_propagation: true,
                ..base
            },
        ),
        ("intraproc", AnalysisConfig::intraprocedural_baseline()),
    ]
}

/// Renders Table 1: program characteristics, measured vs paper.
pub fn render_table1(suite: &[PreparedProgram]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: characteristics of program test suite (measured | paper*)\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>9} {:>7} {:>8} {:>8} {:>8}",
        "program", "lines", "paper*", "procs", "paper*", "mean", "median"
    );
    for p in suite {
        let stats = program_stats(&p.generated.source);
        let paper = PAPER_SIZES.iter().find(|r| r.name == p.generated.name);
        let (pl, pp) = paper.map(|r| (r.lines, r.procedures)).unwrap_or((0, 0));
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>9} {:>7} {:>8} {:>8.1} {:>8.1}",
            p.generated.name,
            stats.lines,
            pl,
            stats.procedures,
            pp,
            stats.mean_proc_lines,
            stats.median_proc_lines
        );
    }
    let _ = writeln!(
        out,
        "\n* Table 1 of the paper is partially illegible; starred figures are\n  reconstructed targets (see EXPERIMENTS.md)."
    );
    out
}

/// One measured row: substitution totals per configuration, driven
/// through the program's session so per-program artifacts are computed
/// once rather than once per column.
pub fn measure(
    program: &PreparedProgram,
    configs: &[(&'static str, AnalysisConfig)],
) -> Vec<usize> {
    configs
        .iter()
        .map(|(_, c)| program.session.analyze(c).substitutions.total)
        .collect()
}

/// [`measure`] with the columns fanned out over `jobs` worker threads,
/// all sharing the program's one session store (the `RwLock`'d
/// [`ipcp_core::ArtifactStore`] admits concurrent readers). Results come
/// back in column order and are bit-identical to the sequential sweep.
pub fn measure_par(
    program: &PreparedProgram,
    configs: &[(&'static str, AnalysisConfig)],
    jobs: usize,
) -> Vec<usize> {
    ipcp_core::parallel::par_map(jobs, configs, |_, (_, c)| {
        program.session.analyze(c).substitutions.total
    })
}

/// The full Table-2-style sweep — all four jump-function kinds, each
/// with and without return jump functions (8 configurations) — with the
/// per-analysis worker count pinned to `jobs`.
pub fn sweep_configs(jobs: usize) -> Vec<(&'static str, AnalysisConfig)> {
    const NAMES: [[&str; 2]; 4] = [
        ["lit+rjf", "lit-rjf"],
        ["intra+rjf", "intra-rjf"],
        ["pass+rjf", "pass-rjf"],
        ["poly+rjf", "poly-rjf"],
    ];
    let mut configs = Vec::new();
    for (i, kind) in JumpFunctionKind::ALL.into_iter().enumerate() {
        for (j, rjf) in [true, false].into_iter().enumerate() {
            configs.push((
                NAMES[i][j],
                AnalysisConfig {
                    jump_function: kind,
                    return_jump_functions: rjf,
                    jobs,
                    ..AnalysisConfig::default()
                },
            ));
        }
    }
    configs
}

/// Runs the 8-config sweep through one fresh session with the *columns*
/// fanned out over `jobs` workers, returning the session (for its phase
/// stats) and the substitution totals. Each column's analysis runs
/// sequentially inside its worker — parallelizing at the coarsest level
/// keeps the thread count at `jobs` instead of `jobs²`; intra-analysis
/// fan-out is for single-configuration runs.
pub fn run_sweep(ir: &ipcp_ir::Program, jobs: usize) -> (AnalysisSession, Vec<usize>) {
    let configs = sweep_configs(1);
    let session = AnalysisSession::new(ir);
    // Warm the configuration-independent artifacts (call graph, MOD/REF,
    // per-procedure SSA, return jump functions) with one sequential
    // column; the remaining columns then fan out as mostly cache-hit
    // traffic plus their per-configuration work, instead of racing to
    // compute the shared artifacts redundantly.
    let mut totals = Vec::with_capacity(configs.len());
    totals.push(session.analyze(&configs[0].1).substitutions.total);
    totals.extend(ipcp_core::parallel::par_map(
        jobs,
        &configs[1..],
        |_, (_, c)| session.analyze(c).substitutions.total,
    ));
    (session, totals)
}

/// [`measure`] through the straight-line single-shot pipeline — the
/// pre-session behaviour, kept as the equivalence oracle for the
/// session-driven tables.
pub fn measure_reference(
    program: &ipcp_ir::Program,
    configs: &[(&'static str, AnalysisConfig)],
) -> Vec<usize> {
    configs
        .iter()
        .map(|(_, c)| analyze_reference(program, c).substitutions.total)
        .collect()
}

/// Wall-clock analysis time per configuration, in microseconds (single
/// run — Criterion benches give the statistically careful numbers; this
/// feeds the self-contained `report --timing` view).
pub fn measure_timing(
    program: &ipcp_ir::Program,
    configs: &[(&'static str, AnalysisConfig)],
) -> Vec<u128> {
    configs
        .iter()
        .map(|(_, c)| {
            let start = std::time::Instant::now();
            let _ = analyze(program, c);
            start.elapsed().as_micros()
        })
        .collect()
}

/// Renders per-configuration analysis times over the suite — the paper's
/// §3.1.5 cost/precision tradeoff as a table.
pub fn render_timings(suite: &[PreparedProgram]) -> String {
    let configs = table2_configs();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Analysis wall-clock per jump function (µs, single run)
"
    );
    let _ = write!(out, "{:<10}", "program");
    for (name, _) in &configs {
        let _ = write!(out, " {name:>11}");
    }
    out.push('\n');
    for p in suite {
        // Fresh one-shot runs, not the shared session: per-kind costs
        // stay comparable instead of the first column paying for all.
        let times = measure_timing(&p.ir, &configs);
        let _ = write!(out, "{:<10}", p.generated.name);
        for t in times {
            let _ = write!(out, " {t:>11}");
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "
The four kinds cost nearly the same end-to-end (§3.1.5: complex
polynomial jump functions are rare in practice, so cost(J) of the
polynomial kind approaches pass-through)."
    );
    out
}

/// Renders Table 2: constants found through use of jump functions.
/// Columns are measured concurrently over `jobs` workers, sharing each
/// program's session store; the printed numbers are identical at any
/// worker count.
pub fn render_table2(suite: &[PreparedProgram], jobs: usize) -> String {
    let configs = table2_configs();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: constants found through use of jump functions"
    );
    let _ = writeln!(out, "          (each cell: measured (paper))\n");
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>12} {:>12} | {:>12} {:>12}",
        "program", "polynomial", "pass-thru", "intraproc", "literal", "poly no-RJF", "pass no-RJF"
    );
    for p in suite {
        let measured = measure_par(p, &configs, jobs);
        let paper = paper_row(&p.generated.name).expect("paper row");
        let pv = [
            paper.poly,
            paper.pass_through,
            paper.intraprocedural,
            paper.literal,
            paper.poly_no_rjf,
            paper.pass_through_no_rjf,
        ];
        let cell = |i: usize| format!("{} ({})", measured[i], pv[i]);
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>12} {:>12} {:>12} | {:>12} {:>12}",
            p.generated.name,
            cell(0),
            cell(1),
            cell(2),
            cell(3),
            cell(4),
            cell(5)
        );
    }
    out
}

/// Renders Table 3: comparison with other propagation techniques.
/// Columns fan out over `jobs` workers like [`render_table2`].
pub fn render_table3(suite: &[PreparedProgram], jobs: usize) -> String {
    let configs = table3_configs();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: most precise jump function vs other techniques"
    );
    let _ = writeln!(out, "          (each cell: measured (paper))\n");
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "program", "poly w/o MOD", "poly w/ MOD", "complete", "intraproc"
    );
    for p in suite {
        let measured = measure_par(p, &configs, jobs);
        let paper = paper_row(&p.generated.name).expect("paper row");
        let pv = [
            paper.poly_no_mod,
            paper.poly,
            paper.complete,
            paper.intraprocedural_only,
        ];
        let cell = |i: usize| format!("{} ({})", measured[i], pv[i]);
        let _ = writeln!(
            out,
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            p.generated.name,
            cell(0),
            cell(1),
            cell(2),
            cell(3)
        );
    }
    out
}
