//! Framework-overhead benchmark support.
//!
//! The value-context solver now runs through the generic
//! `ipcp_core::framework` engine. This module keeps two oracles around
//! that quantify what the refactor cost:
//!
//! * the **golden Table-2/Table-3 pins** ([`TABLE2_GOLDEN`],
//!   [`TABLE3_GOLDEN`]) every engine change must reproduce bit-for-bit
//!   (consumed by `tests/golden.rs`, `tests/framework_golden.rs`, and
//!   `report --framework-bench`), and
//! * a **verbatim replica of the pre-refactor bespoke solve loop**
//!   ([`legacy_solve`]) so the generic engine's overhead can be measured
//!   against the exact code it replaced, on identical inputs, with
//!   identical results.

use ipcp_core::{ForwardJumpFns, ValSets};
use ipcp_ir::{ProcId, Program};
use ipcp_ssa::{KillOracle, WorstCaseKills};
use std::collections::{BTreeMap, VecDeque};

use ipcp_analysis::{
    augment_global_vars, compute_modref, CallGraph, LatticeVal, ModKills, ModRefInfo, Slot,
};

/// Pinned Table-2 cells:
/// `(program, [poly, pass, intra, literal, poly-noRJF, pass-noRJF])`,
/// in [`crate::table2_configs`] column order.
pub const TABLE2_GOLDEN: [(&str, [usize; 6]); 12] = [
    ("adm", [110, 110, 110, 110, 110, 110]),
    ("doduc", [289, 289, 289, 286, 287, 287]),
    ("fpppp", [60, 60, 54, 49, 56, 56]),
    ("linpackd", [170, 170, 170, 94, 170, 170]),
    ("matrix300", [138, 138, 122, 71, 138, 138]),
    ("mdg", [41, 41, 40, 31, 40, 40]),
    ("ocean", [194, 194, 194, 57, 62, 62]),
    ("qcd", [180, 180, 180, 180, 180, 180]),
    ("simple", [183, 183, 179, 174, 183, 183]),
    ("snasa7", [336, 336, 336, 254, 336, 336]),
    ("spec77", [137, 137, 137, 104, 137, 137]),
    ("trfd", [16, 16, 16, 16, 16, 16]),
];

/// Pinned Table-3 cells:
/// `(program, [poly w/o MOD, poly w/ MOD, complete, intraprocedural])`,
/// in [`crate::table3_configs`] column order.
pub const TABLE3_GOLDEN: [(&str, [usize; 4]); 12] = [
    ("adm", [25, 110, 110, 105]),
    ("doduc", [286, 289, 289, 3]),
    ("fpppp", [34, 60, 60, 38]),
    ("linpackd", [33, 170, 170, 74]),
    ("matrix300", [18, 138, 138, 69]),
    ("mdg", [31, 41, 41, 31]),
    ("ocean", [62, 194, 204, 55]),
    ("qcd", [169, 180, 180, 179]),
    ("simple", [3, 183, 183, 173]),
    ("snasa7", [303, 336, 336, 254]),
    ("spec77", [76, 137, 141, 82]),
    ("trfd", [10, 16, 16, 15]),
];

/// Everything the propagation solver consumes, built once per program so
/// the solver microbenchmark times *only* the solve loop.
pub struct SolverInputs {
    /// The (global-augmented) program.
    pub program: Program,
    /// Its call graph.
    pub cg: CallGraph,
    /// MOD/REF summaries.
    pub modref: ModRefInfo,
    /// Polynomial forward jump functions with RJF recovery — the
    /// default (most demanding) Table-2 column.
    pub jfs: ForwardJumpFns,
}

/// Builds [`SolverInputs`] with the default configuration's choices
/// (MOD-aware kills, return jump functions with constant-evaluating
/// recovery, polynomial forward jump functions).
pub fn solver_inputs(ir: &Program, mod_info: bool) -> SolverInputs {
    let mut program = ir.clone();
    let cg = CallGraph::new(&program);
    let modref = compute_modref(&program, &cg);
    augment_global_vars(&mut program, &modref);
    let cg = CallGraph::new(&program);
    let modref = compute_modref(&program, &cg);
    let mod_kills;
    let kills: &dyn KillOracle = if mod_info {
        mod_kills = ModKills::new(&program, &modref);
        &mod_kills
    } else {
        &WorstCaseKills
    };
    let rjfs = ipcp_core::build_return_jfs(&program, &cg, kills);
    let recovery = ipcp_core::RjfConstEval { rjfs: &rjfs };
    let jfs = ipcp_core::build_forward_jfs(
        &program,
        &cg,
        &modref,
        ipcp_core::JumpFunctionKind::Polynomial,
        kills,
        &recovery,
    );
    SolverInputs {
        program,
        cg,
        modref,
        jfs,
    }
}

/// The pre-refactor bespoke propagation loop, ported verbatim (minus
/// observability) from the solver as it stood before the generic
/// value-context engine replaced it. Kept as the overhead baseline:
/// [`assert_solver_agreement`] checks the engine still computes the
/// identical fixpoint in the identical number of iterations.
pub fn legacy_solve(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    jfs: &ForwardJumpFns,
) -> (Vec<BTreeMap<Slot, LatticeVal>>, usize) {
    let n = program.procs.len();
    let mut vals: Vec<BTreeMap<Slot, LatticeVal>> = Vec::with_capacity(n);
    for pid in program.proc_ids() {
        let mut map = BTreeMap::new();
        for slot in modref.param_slots(program, pid) {
            map.insert(slot, LatticeVal::Top);
        }
        vals.push(map);
    }

    let main = program.main;
    let main_slots: Vec<Slot> = vals[main.index()].keys().copied().collect();
    for slot in main_slots {
        if let Slot::Global(g) = slot {
            let v = match program.global(g).init {
                Some(c) => LatticeVal::Const(c),
                None => LatticeVal::Bottom,
            };
            vals[main.index()].insert(slot, v);
        }
    }

    let mut queued = vec![false; n];
    let mut work: VecDeque<ProcId> = VecDeque::new();
    work.push_back(main);
    queued[main.index()] = true;
    for pid in program.proc_ids() {
        if cg.is_reachable(pid) && !queued[pid.index()] {
            queued[pid.index()] = true;
            work.push_back(pid);
        }
    }

    let mut iterations = 0usize;
    while let Some(p) = work.pop_front() {
        queued[p.index()] = false;
        iterations += 1;

        for site in jfs.sites(p) {
            if !site.reachable {
                continue;
            }
            let q = site.callee;
            for (&slot, jf) in &site.jfs {
                let env = |s: Slot| -> LatticeVal {
                    vals[p.index()]
                        .get(&s)
                        .copied()
                        .unwrap_or(LatticeVal::Bottom)
                };
                let incoming = jf.eval_lattice(&env);
                let old = vals[q.index()]
                    .get(&slot)
                    .copied()
                    .unwrap_or(LatticeVal::Top);
                let new = old.meet(incoming);
                if new != old {
                    vals[q.index()].insert(slot, new);
                    if !queued[q.index()] {
                        queued[q.index()] = true;
                        work.push_back(q);
                    }
                }
            }
        }
    }

    (vals, iterations)
}

/// Asserts the generic engine's result is bit-identical to the legacy
/// loop's: same iteration count, same value for every tracked slot.
///
/// # Panics
///
/// Panics on the first divergence, naming the procedure and slot.
pub fn assert_solver_agreement(
    program: &Program,
    engine: &ValSets,
    legacy: &(Vec<BTreeMap<Slot, LatticeVal>>, usize),
) {
    assert_eq!(
        engine.iterations(),
        legacy.1,
        "engine iteration count diverged from the legacy loop"
    );
    for pid in program.proc_ids() {
        let legacy_map = &legacy.0[pid.index()];
        assert_eq!(
            engine.of(pid),
            legacy_map,
            "VAL({}) diverged",
            program.proc(pid).name
        );
    }
}
