//! Golden provenance test: the per-level attribution of every Table-2
//! configuration sums *exactly* to the pinned substitution totals (the
//! attribution pass shares the counting pass's SCCP walk, so any drift
//! is a behaviour change), and every constant the solver produced is
//! justified by at least one recorded call edge or initializer seed.

use ipcp_bench::{prepare_suite, table2_configs};
use ipcp_core::analyze_provenance;

/// (program, [poly, pass, intra, literal, poly-noRJF, pass-noRJF]) —
/// the same pinned cells as `tests/golden.rs`.
const TABLE2: [(&str, [usize; 6]); 12] = [
    ("adm", [110, 110, 110, 110, 110, 110]),
    ("doduc", [289, 289, 289, 286, 287, 287]),
    ("fpppp", [60, 60, 54, 49, 56, 56]),
    ("linpackd", [170, 170, 170, 94, 170, 170]),
    ("matrix300", [138, 138, 122, 71, 138, 138]),
    ("mdg", [41, 41, 40, 31, 40, 40]),
    ("ocean", [194, 194, 194, 57, 62, 62]),
    ("qcd", [180, 180, 180, 180, 180, 180]),
    ("simple", [183, 183, 179, 174, 183, 183]),
    ("snasa7", [336, 336, 336, 254, 336, 336]),
    ("spec77", [137, 137, 137, 104, 137, 137]),
    ("trfd", [16, 16, 16, 16, 16, 16]),
];

#[test]
fn attribution_sums_to_pinned_table2_totals() {
    let suite = prepare_suite();
    let configs = table2_configs();
    for (p, (name, expect)) in suite.iter().zip(TABLE2.iter()) {
        assert_eq!(&p.generated.name, name);
        for ((cname, config), want) in configs.iter().zip(expect.iter()) {
            let prov = analyze_provenance(&p.ir, config);
            let a = prov.attribution;
            assert_eq!(a.total(), *want, "{name}/{cname}: {a:?}");
            // Every solver constant resolves to a provenance chain.
            assert!(prov.fully_justified(), "{name}/{cname}");
            // A literal-only jump function implementation cannot owe
            // anything to pass-through or polynomial representations.
            if cname.starts_with("lit") {
                assert_eq!(a.pass_through, 0, "{name}/{cname}: {a:?}");
                assert_eq!(a.polynomial, 0, "{name}/{cname}: {a:?}");
            }
        }
    }
}
