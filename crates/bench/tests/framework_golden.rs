//! Golden equivalence for the generic value-context engine: every one
//! of the 72 pinned Table-2 cells must come out bit-identical through
//! the refactored solver — at different worker counts, through the
//! fuel-metered reference pipeline, and across a disk-cache close and
//! reopen (the artifact format version was bumped with the refactor, so
//! pre-engine artifacts are never silently reused).

use ipcp_bench::{prepare_suite, table2_configs, TABLE2_GOLDEN};
use ipcp_core::{AnalysisConfig, AnalysisSession, DiskCache};
use std::sync::Arc;

fn assert_pins(totals: &[Vec<usize>], what: &str) {
    for (row, (name, expect)) in totals.iter().zip(TABLE2_GOLDEN.iter()) {
        assert_eq!(row, &expect.to_vec(), "{what}: {name}");
    }
}

/// One full Table-2 sweep through fresh sessions, with `jobs` and
/// `fuel` forced onto every configuration.
fn sweep(jobs: usize, fuel: Option<u64>, cache: Option<&Arc<DiskCache>>) -> Vec<Vec<usize>> {
    let suite = prepare_suite();
    let configs = table2_configs();
    suite
        .iter()
        .map(|p| {
            let mut session = AnalysisSession::new(&p.ir);
            if let Some(cache) = cache {
                session.attach_disk_cache(Arc::clone(cache));
            }
            configs
                .iter()
                .map(|(_, c)| {
                    let config = AnalysisConfig { jobs, fuel, ..*c };
                    session.analyze(&config).substitutions.total
                })
                .collect()
        })
        .collect()
}

#[test]
fn cells_are_pinned_at_one_and_four_workers() {
    assert_pins(&sweep(1, None, None), "jobs=1");
    assert_pins(&sweep(4, None, None), "jobs=4");
}

#[test]
fn cells_are_pinned_under_generous_fuel() {
    // A fuel-metered run routes through the budget-aware reference
    // pipeline — a different code path over the same engine; a generous
    // budget must not change a single cell.
    assert_pins(&sweep(1, Some(1 << 40), None), "fuel");
}

#[test]
fn cells_are_pinned_across_a_disk_cache_reopen() {
    let dir = std::env::temp_dir().join(format!("ipcp-framework-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold_cache = Arc::new(DiskCache::open(&dir).expect("open cache"));
    assert_pins(&sweep(1, None, Some(&cold_cache)), "cold cache");
    assert!(cold_cache.stats().writes > 0, "{:?}", cold_cache.stats());
    drop(cold_cache);

    // A fresh handle on the persisted directory: the warm pass must be
    // served from the cache written by the engine, not recomputed, and
    // still reproduce every pin.
    let warm_cache = Arc::new(DiskCache::open(&dir).expect("reopen cache"));
    assert!(warm_cache.entry_count() > 0);
    assert_pins(&sweep(1, None, Some(&warm_cache)), "warm cache");
    let stats = warm_cache.stats();
    assert!(stats.hits > 0, "{stats:?}");
    assert_eq!(stats.quarantined, 0, "{stats:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_matches_the_legacy_solver_loop() {
    // The bespoke pre-refactor solve loop, replayed on identical inputs:
    // the generic engine must reach the identical fixpoint in the
    // identical number of iterations on every suite program.
    for p in prepare_suite() {
        let inputs = ipcp_bench::solver_inputs(&p.ir, true);
        let engine = ipcp_core::solve(&inputs.program, &inputs.cg, &inputs.modref, &inputs.jfs);
        let legacy =
            ipcp_bench::legacy_solve(&inputs.program, &inputs.cg, &inputs.modref, &inputs.jfs);
        ipcp_bench::assert_solver_agreement(&inputs.program, &engine, &legacy);
    }
}
