//! Golden regression test: the measured table cells are deterministic
//! (fixed generator seeds, deterministic analyzer), so any change to
//! these numbers is a behaviour change that EXPERIMENTS.md must track.

use ipcp_bench::{
    measure, measure_reference, prepare_suite, table2_configs, table3_configs, TABLE2_GOLDEN,
    TABLE3_GOLDEN,
};

#[test]
fn table2_numbers_are_pinned() {
    let mut suite = prepare_suite();
    let configs = table2_configs();
    for (p, (name, expect)) in suite.iter_mut().zip(TABLE2_GOLDEN.iter()) {
        assert_eq!(&p.generated.name, name);
        let measured = measure(p, &configs);
        assert_eq!(measured, expect.to_vec(), "{name}");
    }
}

#[test]
fn table3_numbers_are_pinned() {
    let mut suite = prepare_suite();
    let configs = table3_configs();
    for (p, (name, expect)) in suite.iter_mut().zip(TABLE3_GOLDEN.iter()) {
        assert_eq!(&p.generated.name, name);
        let measured = measure(p, &configs);
        assert_eq!(measured, expect.to_vec(), "{name}");
    }
}

/// The session-driven tables equal the straight-line pipeline cell for
/// cell — across BOTH sweeps through one warm session per program, so
/// Table-3 columns are measured against caches primed by Table 2.
#[test]
fn session_tables_match_reference_pipeline() {
    let mut suite = prepare_suite();
    let mut configs = table2_configs();
    configs.extend(table3_configs());
    for p in suite.iter_mut() {
        let want = measure_reference(&p.ir, &configs);
        let got = measure(p, &configs);
        assert_eq!(got, want, "{}", p.generated.name);
    }
}

#[test]
fn suite_is_alias_clean() {
    // The generator must respect the FORTRAN no-alias rule the analyses
    // assume.
    use ipcp_analysis::{check_aliasing, compute_modref, CallGraph};
    for p in prepare_suite() {
        let cg = CallGraph::new(&p.ir);
        let modref = compute_modref(&p.ir, &cg);
        let violations = check_aliasing(&p.ir, &modref);
        assert!(
            violations.is_empty(),
            "{}: {violations:?}",
            p.generated.name
        );
    }
}
