//! Golden regression test: the measured table cells are deterministic
//! (fixed generator seeds, deterministic analyzer), so any change to
//! these numbers is a behaviour change that EXPERIMENTS.md must track.

use ipcp_bench::{measure, measure_reference, prepare_suite, table2_configs, table3_configs};

/// (program, [poly, pass, intra, literal, poly-noRJF, pass-noRJF]).
const TABLE2: [(&str, [usize; 6]); 12] = [
    ("adm", [110, 110, 110, 110, 110, 110]),
    ("doduc", [289, 289, 289, 286, 287, 287]),
    ("fpppp", [60, 60, 54, 49, 56, 56]),
    ("linpackd", [170, 170, 170, 94, 170, 170]),
    ("matrix300", [138, 138, 122, 71, 138, 138]),
    ("mdg", [41, 41, 40, 31, 40, 40]),
    ("ocean", [194, 194, 194, 57, 62, 62]),
    ("qcd", [180, 180, 180, 180, 180, 180]),
    ("simple", [183, 183, 179, 174, 183, 183]),
    ("snasa7", [336, 336, 336, 254, 336, 336]),
    ("spec77", [137, 137, 137, 104, 137, 137]),
    ("trfd", [16, 16, 16, 16, 16, 16]),
];

/// (program, [poly w/o MOD, poly w/ MOD, complete, intraprocedural]).
const TABLE3: [(&str, [usize; 4]); 12] = [
    ("adm", [25, 110, 110, 105]),
    ("doduc", [286, 289, 289, 3]),
    ("fpppp", [34, 60, 60, 38]),
    ("linpackd", [33, 170, 170, 74]),
    ("matrix300", [18, 138, 138, 69]),
    ("mdg", [31, 41, 41, 31]),
    ("ocean", [62, 194, 204, 55]),
    ("qcd", [169, 180, 180, 179]),
    ("simple", [3, 183, 183, 173]),
    ("snasa7", [303, 336, 336, 254]),
    ("spec77", [76, 137, 141, 82]),
    ("trfd", [10, 16, 16, 15]),
];

#[test]
fn table2_numbers_are_pinned() {
    let mut suite = prepare_suite();
    let configs = table2_configs();
    for (p, (name, expect)) in suite.iter_mut().zip(TABLE2.iter()) {
        assert_eq!(&p.generated.name, name);
        let measured = measure(p, &configs);
        assert_eq!(measured, expect.to_vec(), "{name}");
    }
}

#[test]
fn table3_numbers_are_pinned() {
    let mut suite = prepare_suite();
    let configs = table3_configs();
    for (p, (name, expect)) in suite.iter_mut().zip(TABLE3.iter()) {
        assert_eq!(&p.generated.name, name);
        let measured = measure(p, &configs);
        assert_eq!(measured, expect.to_vec(), "{name}");
    }
}

/// The session-driven tables equal the straight-line pipeline cell for
/// cell — across BOTH sweeps through one warm session per program, so
/// Table-3 columns are measured against caches primed by Table 2.
#[test]
fn session_tables_match_reference_pipeline() {
    let mut suite = prepare_suite();
    let mut configs = table2_configs();
    configs.extend(table3_configs());
    for p in suite.iter_mut() {
        let want = measure_reference(&p.ir, &configs);
        let got = measure(p, &configs);
        assert_eq!(got, want, "{}", p.generated.name);
    }
}

#[test]
fn suite_is_alias_clean() {
    // The generator must respect the FORTRAN no-alias rule the analyses
    // assume.
    use ipcp_analysis::{check_aliasing, compute_modref, CallGraph};
    for p in prepare_suite() {
        let cg = CallGraph::new(&p.ir);
        let modref = compute_modref(&p.ir, &cg);
        let violations = check_aliasing(&p.ir, &modref);
        assert!(
            violations.is_empty(),
            "{}: {violations:?}",
            p.generated.name
        );
    }
}
