//! Property pins for the dense-table solver refactor: on random
//! programs, the flat `SlotTable`-backed engine must be bit-identical to
//! the pre-flattening map-based loop (the [`ipcp_bench::legacy_solve`]
//! replica), and full session outcomes must be identical at worker
//! counts {1, 2, 8}, with and without a fuel budget.

use ipcp_bench::{assert_solver_agreement, legacy_solve, solver_inputs};
use ipcp_core::{solve, solve_budgeted, AnalysisConfig, AnalysisSession};
use ipcp_suite::random_case;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn flat_solver_matches_the_map_solver(seed in 0u64..(1u64 << 48)) {
        let case = random_case(seed);
        let ir = ipcp_ir::compile_to_ir(&case.source).expect("fuzz cases compile");

        // Solver level: flat tables vs the verbatim map-based loop.
        let inputs = solver_inputs(&ir, true);
        let engine = solve(&inputs.program, &inputs.cg, &inputs.modref, &inputs.jfs);
        let legacy = legacy_solve(&inputs.program, &inputs.cg, &inputs.modref, &inputs.jfs);
        assert_solver_agreement(&inputs.program, &engine, &legacy);

        // A generously budgeted solve draws fuel but must not change a
        // single lattice value or iteration.
        let budget = ipcp_analysis::Budget::with_fuel(1 << 40);
        let budgeted = solve_budgeted(
            &inputs.program,
            &inputs.cg,
            &inputs.modref,
            &inputs.jfs,
            &budget,
        );
        assert_solver_agreement(&inputs.program, &budgeted, &legacy);
    }

    #[test]
    fn session_outcomes_are_identical_across_worker_counts(seed in 0u64..(1u64 << 48)) {
        let case = random_case(seed);
        let ir = ipcp_ir::compile_to_ir(&case.source).expect("fuzz cases compile");
        for fuel in [None, Some(1u64 << 34)] {
            let base = AnalysisConfig {
                jobs: 1,
                fuel,
                ..AnalysisConfig::default()
            };
            let want = AnalysisSession::new(&ir).analyze(&base);
            for jobs in [2usize, 8] {
                let config = AnalysisConfig { jobs, ..base };
                let got = AnalysisSession::new(&ir).analyze(&config);
                prop_assert_eq!(&got.program, &want.program, "jobs={} fuel={:?}", jobs, fuel);
                prop_assert_eq!(&got.constants, &want.constants, "jobs={} fuel={:?}", jobs, fuel);
                prop_assert_eq!(
                    &got.substitutions,
                    &want.substitutions,
                    "jobs={} fuel={:?}",
                    jobs,
                    fuel
                );
                prop_assert_eq!(&got.stats, &want.stats, "jobs={} fuel={:?}", jobs, fuel);
                prop_assert_eq!(
                    &got.robustness,
                    &want.robustness,
                    "jobs={} fuel={:?}",
                    jobs,
                    fuel
                );
            }
        }
    }
}
