//! Acceptance check for the memoized session path: over every example
//! program shipped in `examples/programs/` and every synthetic suite
//! program, a single warm session swept across all Table-2 and Table-3
//! configurations produces outcomes identical — program, CONSTANTS,
//! substitution counts, cost stats, robustness — to the straight-line
//! single-shot pipeline run fresh per configuration.

use ipcp_bench::{prepare_suite, table2_configs, table3_configs};
use ipcp_core::{analyze_reference, AnalysisConfig, AnalysisOutcome, AnalysisSession};

fn sweep() -> Vec<(&'static str, AnalysisConfig)> {
    let mut configs = table2_configs();
    configs.extend(table3_configs());
    configs
}

fn assert_outcomes_identical(got: &AnalysisOutcome, want: &AnalysisOutcome, what: &str) {
    assert_eq!(got.program, want.program, "{what}: program");
    assert_eq!(got.constants, want.constants, "{what}: constants");
    assert_eq!(
        got.substitutions, want.substitutions,
        "{what}: substitutions"
    );
    assert_eq!(got.stats, want.stats, "{what}: stats");
    assert_eq!(got.robustness, want.robustness, "{what}: robustness");
}

fn check_program(name: &str, ir: &ipcp_ir::Program) {
    let session = AnalysisSession::new(ir);
    for (label, config) in sweep() {
        let got = session.analyze(&config);
        let want = analyze_reference(ir, &config);
        assert_outcomes_identical(&got, &want, &format!("{name} / {label}"));
    }
    assert!(
        session.stats().total_hits() > 0,
        "{name}: the sweep never reused an artifact"
    );
}

#[test]
fn example_programs_identical_across_sweep() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/programs");
    let mut found = 0;
    for entry in std::fs::read_dir(dir).expect("examples/programs exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "mf") {
            continue;
        }
        found += 1;
        let source = std::fs::read_to_string(&path).expect("readable");
        let ir = ipcp_ir::compile_to_ir(&source)
            .unwrap_or_else(|e| panic!("{} does not compile: {e}", path.display()));
        check_program(&path.display().to_string(), &ir);
    }
    assert!(found >= 2, "expected the shipped example programs");
}

#[test]
fn suite_programs_identical_across_sweep() {
    for p in prepare_suite() {
        check_program(&p.generated.name, &p.ir);
    }
}
