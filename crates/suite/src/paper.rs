//! Reference values from the paper, for side-by-side reporting.
//!
//! Table 1's scan is partially illegible in the available text; the
//! `lines`/`procedures` figures marked approximate are reconstructed from
//! the legible fragments and the paper's description ("small to medium
//! size, fairly high degree of modularity"). Tables 2 and 3 are fully
//! legible and reproduced exactly.

/// One row of the paper's Table 2 (constants found through jump
/// functions) and Table 3 (propagation technique comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Table 2, polynomial forward + return JFs.
    pub poly: usize,
    /// Table 2, pass-through forward + return JFs.
    pub pass_through: usize,
    /// Table 2, intraprocedural-constant forward + return JFs.
    pub intraprocedural: usize,
    /// Table 2, literal forward + return JFs.
    pub literal: usize,
    /// Table 2, polynomial forward, no return JFs.
    pub poly_no_rjf: usize,
    /// Table 2, pass-through forward, no return JFs.
    pub pass_through_no_rjf: usize,
    /// Table 3, polynomial without MOD information.
    pub poly_no_mod: usize,
    /// Table 3, complete propagation.
    pub complete: usize,
    /// Table 3, purely intraprocedural propagation (with MOD).
    pub intraprocedural_only: usize,
}

/// The paper's Tables 2 and 3, one entry per benchmark.
pub const PAPER_RESULTS: [PaperRow; 12] = [
    PaperRow {
        name: "adm",
        poly: 110,
        pass_through: 110,
        intraprocedural: 110,
        literal: 110,
        poly_no_rjf: 110,
        pass_through_no_rjf: 110,
        poly_no_mod: 25,
        complete: 110,
        intraprocedural_only: 105,
    },
    PaperRow {
        name: "doduc",
        poly: 289,
        pass_through: 289,
        intraprocedural: 289,
        literal: 288,
        poly_no_rjf: 287,
        pass_through_no_rjf: 287,
        poly_no_mod: 288,
        complete: 289,
        intraprocedural_only: 3,
    },
    PaperRow {
        name: "fpppp",
        poly: 60,
        pass_through: 60,
        intraprocedural: 54,
        literal: 49,
        poly_no_rjf: 56,
        pass_through_no_rjf: 56,
        poly_no_mod: 34,
        complete: 60,
        intraprocedural_only: 38,
    },
    PaperRow {
        name: "linpackd",
        poly: 170,
        pass_through: 170,
        intraprocedural: 170,
        literal: 94,
        poly_no_rjf: 170,
        pass_through_no_rjf: 170,
        poly_no_mod: 33,
        complete: 170,
        intraprocedural_only: 74,
    },
    PaperRow {
        name: "matrix300",
        poly: 138,
        pass_through: 138,
        intraprocedural: 122,
        literal: 71,
        poly_no_rjf: 138,
        pass_through_no_rjf: 138,
        poly_no_mod: 18,
        complete: 138,
        intraprocedural_only: 69,
    },
    PaperRow {
        name: "mdg",
        poly: 41,
        pass_through: 41,
        intraprocedural: 40,
        literal: 31,
        poly_no_rjf: 40,
        pass_through_no_rjf: 40,
        poly_no_mod: 31,
        complete: 41,
        intraprocedural_only: 31,
    },
    PaperRow {
        name: "ocean",
        poly: 194,
        pass_through: 194,
        intraprocedural: 194,
        literal: 57,
        poly_no_rjf: 62,
        pass_through_no_rjf: 62,
        poly_no_mod: 79,
        complete: 204,
        intraprocedural_only: 56,
    },
    PaperRow {
        name: "qcd",
        poly: 180,
        pass_through: 180,
        intraprocedural: 180,
        literal: 180,
        poly_no_rjf: 180,
        pass_through_no_rjf: 180,
        poly_no_mod: 169,
        complete: 180,
        intraprocedural_only: 179,
    },
    PaperRow {
        name: "simple",
        poly: 183,
        pass_through: 183,
        intraprocedural: 179,
        literal: 174,
        poly_no_rjf: 183,
        pass_through_no_rjf: 183,
        poly_no_mod: 2,
        complete: 183,
        intraprocedural_only: 174,
    },
    PaperRow {
        name: "snasa7",
        poly: 336,
        pass_through: 336,
        intraprocedural: 336,
        literal: 254,
        poly_no_rjf: 336,
        pass_through_no_rjf: 336,
        poly_no_mod: 303,
        complete: 336,
        intraprocedural_only: 254,
    },
    PaperRow {
        name: "spec77",
        poly: 137,
        pass_through: 137,
        intraprocedural: 137,
        literal: 104,
        poly_no_rjf: 137,
        pass_through_no_rjf: 137,
        poly_no_mod: 76,
        complete: 141,
        intraprocedural_only: 83,
    },
    PaperRow {
        name: "trfd",
        poly: 16,
        pass_through: 16,
        intraprocedural: 16,
        literal: 16,
        poly_no_rjf: 16,
        pass_through_no_rjf: 16,
        poly_no_mod: 10,
        complete: 16,
        intraprocedural_only: 15,
    },
];

/// One row of the paper's Table 1 (program characteristics). Values
/// flagged `approximate` were reconstructed from a damaged scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperSizeRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Non-comment lines.
    pub lines: usize,
    /// Procedure count.
    pub procedures: usize,
    /// Whether the figures are reconstructed approximations.
    pub approximate: bool,
}

/// The paper's Table 1 (partially reconstructed).
pub const PAPER_SIZES: [PaperSizeRow; 12] = [
    PaperSizeRow {
        name: "adm",
        lines: 6105,
        procedures: 97,
        approximate: true,
    },
    PaperSizeRow {
        name: "doduc",
        lines: 5334,
        procedures: 41,
        approximate: true,
    },
    PaperSizeRow {
        name: "fpppp",
        lines: 2718,
        procedures: 37,
        approximate: true,
    },
    PaperSizeRow {
        name: "linpackd",
        lines: 797,
        procedures: 11,
        approximate: true,
    },
    PaperSizeRow {
        name: "matrix300",
        lines: 439,
        procedures: 7,
        approximate: true,
    },
    PaperSizeRow {
        name: "mdg",
        lines: 1238,
        procedures: 16,
        approximate: true,
    },
    PaperSizeRow {
        name: "ocean",
        lines: 1728,
        procedures: 36,
        approximate: true,
    },
    PaperSizeRow {
        name: "qcd",
        lines: 2279,
        procedures: 35,
        approximate: true,
    },
    PaperSizeRow {
        name: "simple",
        lines: 805,
        procedures: 8,
        approximate: false,
    },
    PaperSizeRow {
        name: "snasa7",
        lines: 696,
        procedures: 17,
        approximate: true,
    },
    PaperSizeRow {
        name: "spec77",
        lines: 2904,
        procedures: 65,
        approximate: false,
    },
    PaperSizeRow {
        name: "trfd",
        lines: 401,
        procedures: 8,
        approximate: false,
    },
];

/// Looks up a Table 2/3 row.
pub fn paper_row(name: &str) -> Option<&'static PaperRow> {
    PAPER_RESULTS.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_each() {
        assert_eq!(PAPER_RESULTS.len(), 12);
        assert_eq!(PAPER_SIZES.len(), 12);
    }

    #[test]
    fn paper_invariants() {
        for r in &PAPER_RESULTS {
            // The paper's headline: pass-through equals polynomial.
            assert_eq!(r.poly, r.pass_through, "{}", r.name);
            assert_eq!(r.poly_no_rjf, r.pass_through_no_rjf, "{}", r.name);
            // Monotone precision.
            assert!(r.literal <= r.intraprocedural, "{}", r.name);
            assert!(r.intraprocedural <= r.poly, "{}", r.name);
            assert!(r.poly_no_rjf <= r.poly, "{}", r.name);
            assert!(r.complete >= r.poly, "{}", r.name);
            assert!(r.intraprocedural_only <= r.poly, "{}", r.name);
        }
    }

    #[test]
    fn names_align_with_specs() {
        for (row, spec) in PAPER_RESULTS.iter().zip(crate::specs::all_specs()) {
            assert_eq!(row.name, spec.name);
        }
        for (row, spec) in PAPER_SIZES.iter().zip(crate::specs::all_specs()) {
            assert_eq!(row.name, spec.name);
        }
    }

    #[test]
    fn lookup() {
        assert_eq!(paper_row("ocean").unwrap().poly, 194);
        assert!(paper_row("nope").is_none());
    }
}
