//! Differential and metamorphic fuzzing oracles for semantic
//! preservation of the optimize pipeline.
//!
//! The paper's payoff — textual substitution of proven constants — is
//! only meaningful if substitution + DCE preserve program semantics at
//! every jump-function level. This module generates seeded random
//! Minifor programs biased toward the arithmetic corners where constant
//! propagation classically goes wrong (`i64::MIN`, division edges,
//! negative modulo, by-reference parameters, globals, recursion) and
//! checks two oracles over each one:
//!
//! 1. **Differential**: interpret the program before and after the full
//!    `ipcp_core::optimize` pipeline at each forward jump-function
//!    level; the observable output must be byte-identical, or both runs
//!    must stop with the identical trap.
//! 2. **Metamorphic (precision monotonicity)**: raising the
//!    jump-function level along the paper's ladder (Literal ⊆ Intra ⊆
//!    Pass ⊆ Poly) must never lose a proven constant and never change
//!    program output. Conditional propagation (`cond`, layered on
//!    Poly) is held to a per-procedure variant of the same rule: it may
//!    prove every incoming edge of a procedure infeasible — dropping
//!    *all* of that procedure's constants at once — but any procedure
//!    where it keeps a constant must preserve every Poly constant with
//!    an identical value.
//!
//! Failing programs are reduced by a greedy line-removal shrinker and
//! written to a corpus directory as self-describing `.mf` repros that
//! `tests/fuzz_corpus.rs` replays on every `cargo test`.

use ipcp_analysis::par_map;
use ipcp_core::{analyze, optimize, AnalysisConfig, JumpFunctionKind, OptimizeConfig};
use ipcp_ir::Program;
use ipcp_lang::interp::{InterpConfig, InterpError, Value};
use ipcp_obs::ObsSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One generated fuzz input: a Minifor program plus its `read` feed.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The per-iteration seed the case was derived from.
    pub seed: u64,
    /// Minifor source text.
    pub source: String,
    /// Values consumed by `read` (deliberately short sometimes, to
    /// exercise the input-exhausted trap).
    pub input: Vec<i64>,
}

/// One precision level of the fuzzing ladder: the paper's four forward
/// jump-function kinds plus conditional propagation (`cond`), which
/// layers interprocedural branch feasibility on polynomial jump
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzLevel {
    /// A plain forward jump-function level.
    Forward(JumpFunctionKind),
    /// Conditional constant propagation (`--level cond`).
    Conditional,
}

impl FuzzLevel {
    /// The four forward levels in increasing precision order — the
    /// default campaign ladder.
    pub const FORWARD: [FuzzLevel; 4] = [
        FuzzLevel::Forward(JumpFunctionKind::Literal),
        FuzzLevel::Forward(JumpFunctionKind::IntraproceduralConstant),
        FuzzLevel::Forward(JumpFunctionKind::PassThrough),
        FuzzLevel::Forward(JumpFunctionKind::Polynomial),
    ];

    /// Every level, conditional propagation included.
    pub const ALL: [FuzzLevel; 5] = [
        FuzzLevel::Forward(JumpFunctionKind::Literal),
        FuzzLevel::Forward(JumpFunctionKind::IntraproceduralConstant),
        FuzzLevel::Forward(JumpFunctionKind::PassThrough),
        FuzzLevel::Forward(JumpFunctionKind::Polynomial),
        FuzzLevel::Conditional,
    ];

    /// The stable name used in reports, repro headers, and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            FuzzLevel::Forward(JumpFunctionKind::Literal) => "literal",
            FuzzLevel::Forward(JumpFunctionKind::IntraproceduralConstant) => "intra",
            FuzzLevel::Forward(JumpFunctionKind::PassThrough) => "pass",
            FuzzLevel::Forward(JumpFunctionKind::Polynomial) => "poly",
            FuzzLevel::Conditional => "cond",
        }
    }

    /// The analysis configuration this level runs under.
    pub fn config(self) -> AnalysisConfig {
        match self {
            FuzzLevel::Forward(kind) => AnalysisConfig {
                jump_function: kind,
                ..AnalysisConfig::default()
            },
            FuzzLevel::Conditional => AnalysisConfig::conditional(),
        }
    }
}

/// Fuzzing campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of programs to generate and check.
    pub iters: u64,
    /// Campaign seed; per-iteration seeds are derived deterministically,
    /// so reports are independent of `jobs`.
    pub seed: u64,
    /// Worker threads for the iteration fan-out.
    pub jobs: usize,
    /// Precision levels to check, in increasing precision order.
    pub levels: Vec<FuzzLevel>,
    /// Where minimized repros are written (`None` disables writing).
    pub corpus_dir: Option<PathBuf>,
    /// Interpreter step budget per run.
    pub max_steps: u64,
    /// Maximum compile+run attempts the shrinker may spend per failure.
    pub shrink_budget: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 100,
            seed: 1993,
            jobs: 1,
            levels: FuzzLevel::FORWARD.to_vec(),
            corpus_dir: None,
            max_steps: 2_000_000,
            shrink_budget: 2_000,
        }
    }
}

/// A confirmed oracle violation, minimized.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Per-iteration seed that produced the program.
    pub seed: u64,
    /// Which oracle failed: `differential`, `monotonic-constants`.
    pub oracle: String,
    /// Jump-function level the failure was observed at.
    pub level: String,
    /// Human-readable mismatch description.
    pub detail: String,
    /// Minimized source that still exhibits the failure.
    pub source: String,
    /// Input feed of the failing run.
    pub input: Vec<i64>,
}

/// Campaign summary.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Programs generated and checked.
    pub iters: u64,
    /// Programs skipped as incomparable (baseline hit the step or depth
    /// limit, so "same behavior" is not decidable).
    pub skipped: u64,
    /// Confirmed violations, minimized.
    pub violations: Vec<Violation>,
    /// How often each baseline trap class was observed (`ok` counts
    /// trap-free runs).
    pub trap_classes: BTreeMap<String, u64>,
    /// Repro files written to the corpus directory.
    pub repro_paths: Vec<PathBuf>,
    /// Corpus repros replayed clean at the start of the campaign.
    pub corpus_replayed: u64,
    /// Corpus files skipped as unreadable or malformed (diagnosed on
    /// stderr; never aborts the campaign).
    pub corpus_skipped: u64,
    /// Repro files that could not be written (diagnosed on stderr).
    pub corpus_write_errors: u64,
}

impl FuzzReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        let traps: Vec<String> = self
            .trap_classes
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect();
        let mut out = format!(
            "fuzz: {} programs, {} skipped, {} violations [{}]",
            self.iters,
            self.skipped,
            self.violations.len(),
            traps.join(" ")
        );
        if self.corpus_replayed + self.corpus_skipped > 0 {
            out.push_str(&format!(
                ", corpus: {} replayed, {} skipped",
                self.corpus_replayed, self.corpus_skipped
            ));
        }
        if self.corpus_write_errors > 0 {
            out.push_str(&format!(
                ", {} repro write errors",
                self.corpus_write_errors
            ));
        }
        out
    }
}

/// Outcome of checking one case against every oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOutcome {
    /// All oracles passed; carries the baseline trap class (or `ok`).
    Pass(String),
    /// Baseline ran into the step/depth limit: incomparable, skipped.
    Skip,
    /// An oracle failed.
    Fail {
        /// Which oracle.
        oracle: String,
        /// At which level.
        level: String,
        /// What differed.
        detail: String,
    },
}

fn trap_class(e: &InterpError) -> &'static str {
    match e {
        InterpError::DivByZero => "div-by-zero",
        InterpError::ZeroStep => "zero-step",
        InterpError::OutOfBounds { .. } => "out-of-bounds",
        InterpError::InputExhausted => "input-exhausted",
        InterpError::StepLimit => "step-limit",
        InterpError::DepthLimit => "depth-limit",
    }
}

fn behavior(program: &Program, input: &[i64], max_steps: u64) -> Result<Vec<Value>, InterpError> {
    ipcp_ir::eval::run(
        program,
        &InterpConfig {
            input: input.to_vec(),
            max_steps,
            ..InterpConfig::default()
        },
    )
    .map(|o| o.output)
}

fn render_behavior(r: &Result<Vec<Value>, InterpError>) -> String {
    match r {
        Ok(vals) => {
            let rendered: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
            format!("ok [{}]", rendered.join(" "))
        }
        Err(e) => format!("trap {}", trap_class(e)),
    }
}

/// Runs both oracles over one case. Pure and deterministic: the same
/// `(source, input, levels)` always yields the same outcome.
pub fn check_case(
    source: &str,
    input: &[i64],
    levels: &[FuzzLevel],
    max_steps: u64,
) -> CheckOutcome {
    let program = match ipcp_ir::compile_to_ir(source) {
        Ok(p) => p,
        Err(e) => {
            // The generator only emits valid programs; a compile error here
            // is itself a bug worth a repro.
            return CheckOutcome::Fail {
                oracle: "generator".into(),
                level: "-".into(),
                detail: format!("generated program does not compile: {}", e.first().message),
            };
        }
    };
    let base = behavior(&program, input, max_steps);
    if matches!(base, Err(InterpError::StepLimit | InterpError::DepthLimit)) {
        return CheckOutcome::Skip;
    }

    // ---- differential oracle -------------------------------------------
    for &level in levels {
        let config = OptimizeConfig {
            analysis: level.config(),
            clone_procedures: false,
            max_rounds: 8,
        };
        let (optimized, _) = optimize(&program, &config);
        // The pipeline only removes work, so the doubled budget flags an
        // optimized program that suddenly needs *more* steps.
        let got = behavior(&optimized, input, max_steps.saturating_mul(2));
        if got != base {
            return CheckOutcome::Fail {
                oracle: "differential".into(),
                level: level.name().into(),
                detail: format!(
                    "before: {} / after: {}",
                    render_behavior(&base),
                    render_behavior(&got)
                ),
            };
        }
    }

    // ---- metamorphic precision oracle ----------------------------------
    // Walking up the ladder must never lose a proven constant (output
    // equality across levels is already transitively covered above).
    let outcomes: Vec<_> = levels
        .iter()
        .map(|&level| analyze(&program, &level.config()))
        .collect();
    for (w, pair) in outcomes.windows(2).enumerate() {
        let (lower, higher) = (&pair[0], &pair[1]);
        let (lo, hi) = (levels[w], levels[w + 1]);
        for (pid, consts) in lower.constants.iter().enumerate() {
            // Conditional propagation may prove every incoming edge of
            // a procedure infeasible, legitimately dropping ALL of that
            // procedure's constants at once (its context stays ⊤). A
            // procedure that keeps any constant kept feasible incoming
            // edges, and jump-function monotonicity then guarantees
            // every lower-level constant survives with an equal value.
            let higher_consts = higher.constants_of(ipcp_ir::ProcId::from_index(pid));
            if hi == FuzzLevel::Conditional && higher_consts.is_empty() && !consts.is_empty() {
                continue;
            }
            for (slot, v) in consts {
                match higher_consts.get(slot) {
                    Some(w) if w == v => {}
                    other => {
                        return CheckOutcome::Fail {
                            oracle: "monotonic-constants".into(),
                            level: lo.name().into(),
                            detail: format!(
                                "proc #{pid} slot {slot:?}: {v} at {} but {:?} at {}",
                                lo.name(),
                                other,
                                hi.name()
                            ),
                        };
                    }
                }
            }
        }
    }

    CheckOutcome::Pass(match &base {
        Ok(_) => "ok".into(),
        Err(e) => trap_class(e).into(),
    })
}

// ---------------------------------------------------------------------------
// Random program generation
// ---------------------------------------------------------------------------

/// Integer constants biased toward the arithmetic corners: `i64::MIN`,
/// its neighbourhood, `-1`, `0`, and small values that keep loops short.
const EDGE_CONSTANTS: [i64; 12] = [
    i64::MIN,
    i64::MIN + 1,
    i64::MAX,
    i64::MAX - 1,
    -9223372036854775807,
    -1,
    0,
    1,
    2,
    3,
    7,
    1009,
];

struct FuzzGen {
    rng: StdRng,
    globals: Vec<String>,
    /// Declarations emitted at the top of main (arrays).
    decls: String,
    main: String,
    /// Scalar variables currently assigned in main.
    vars: Vec<String>,
    /// Arrays declared in main, each of length 4.
    arrays: Vec<String>,
    input: Vec<i64>,
    next_id: usize,
    /// Callables: (name, arity, is_func).
    callables: Vec<(String, usize, bool)>,
}

impl FuzzGen {
    fn fresh(&mut self, prefix: &str) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!("{prefix}{id}")
    }

    fn constant(&mut self) -> i64 {
        if self.rng.gen_bool(0.5) {
            EDGE_CONSTANTS[self.rng.gen_range(0..EDGE_CONSTANTS.len())]
        } else {
            self.rng.gen_range(-20i64..50)
        }
    }

    /// A small constant, safe as a loop bound.
    fn small(&mut self) -> i64 {
        self.rng.gen_range(0i64..6)
    }

    fn atom(&mut self, scope: &[String]) -> String {
        if !scope.is_empty() && self.rng.gen_bool(0.55) {
            scope[self.rng.gen_range(0..scope.len())].clone()
        } else {
            self.constant().to_string()
        }
    }

    /// A parenthesized random expression over `scope`.
    fn expr(&mut self, scope: &[String], depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return self.atom(scope);
        }
        let op = ["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">="]
            [self.rng.gen_range(0..11usize)];
        let lhs = self.expr(scope, depth - 1);
        let rhs = if op == "/" || op == "%" {
            // Division RHS: usually a nonzero constant (including -1, the
            // i64::MIN/-1 wrapping edge), sometimes a variable that may
            // well be zero at runtime — trap preservation is the point.
            match self.rng.gen_range(0..10) {
                0..=5 => {
                    let c: i64 = [1, 2, 3, -1, -2, 7, 1009][self.rng.gen_range(0..7usize)];
                    c.to_string()
                }
                6..=8 => self.atom(scope),
                _ => self.constant().to_string(),
            }
        } else {
            self.expr(scope, depth - 1)
        };
        format!("({lhs} {op} {rhs})")
    }

    fn line(&mut self, text: &str) {
        self.main.push_str("  ");
        self.main.push_str(text);
        self.main.push('\n');
    }
}

/// Generates one random case from `seed`. Deterministic: the same seed
/// always yields byte-identical source and input.
pub fn random_case(seed: u64) -> FuzzCase {
    let mut g = FuzzGen {
        rng: StdRng::seed_from_u64(seed),
        globals: Vec::new(),
        decls: String::new(),
        main: String::new(),
        vars: Vec::new(),
        arrays: Vec::new(),
        input: Vec::new(),
        next_id: 0,
        callables: Vec::new(),
    };
    let mut source = String::new();

    // Globals, sometimes initialized to an edge constant.
    for _ in 0..g.rng.gen_range(0..3usize) {
        let name = g.fresh("gl");
        if g.rng.gen_bool(0.6) {
            let c = g.constant();
            let _ = writeln!(source, "global {name} = {c}");
        } else {
            let _ = writeln!(source, "global {name}");
        }
        g.globals.push(name);
    }

    // Procedures.
    for _ in 0..g.rng.gen_range(1..4usize) {
        emit_proc(&mut g, &mut source);
    }

    // Main body.
    let globals = g.globals.clone();
    g.vars.extend(globals);
    let stanzas = g.rng.gen_range(3..9usize);
    for _ in 0..stanzas {
        emit_stanza(&mut g);
    }
    // Observable epilogue: print every variable still in scope.
    let tail: Vec<String> = g.vars.clone();
    for v in tail {
        g.line(&format!("print({v})"));
    }

    source.push_str("main\n");
    source.push_str(&g.decls);
    source.push_str(&g.main);
    source.push_str("end\n");

    FuzzCase {
        seed,
        source,
        input: g.input,
    }
}

fn emit_proc(g: &mut FuzzGen, source: &mut String) {
    match g.rng.gen_range(0..4u8) {
        // A printing leaf: the classic jump-function target.
        0 => {
            let name = g.fresh("leaf");
            let scope = vec!["a".to_string(), "b".to_string()];
            let e1 = g.expr(&scope, 2);
            let e2 = g.expr(&scope, 2);
            let _ = writeln!(source, "proc {name}(a, b)");
            let _ = writeln!(source, "  t = {e1}");
            let _ = writeln!(source, "  print((t + {e2}))");
            let _ = writeln!(source, "end");
            g.callables.push((name, 2, false));
        }
        // A function with an arithmetic body.
        1 => {
            let name = g.fresh("fun");
            let scope = vec!["a".to_string()];
            let e = g.expr(&scope, 2);
            let _ = writeln!(source, "func {name}(a)");
            let _ = writeln!(source, "  return {e}");
            let _ = writeln!(source, "end");
            g.callables.push((name, 1, true));
        }
        // A by-reference mutator (bare-name actuals pass by reference).
        2 => {
            let name = g.fresh("bump");
            let scope = vec!["r".to_string()];
            let e = g.expr(&scope, 2);
            let _ = writeln!(source, "proc {name}(r)");
            let _ = writeln!(source, "  r = {e}");
            if !g.globals.is_empty() && g.rng.gen_bool(0.5) {
                let gv = g.globals[g.rng.gen_range(0..g.globals.len())].clone();
                let ge = g.expr(&[gv.clone(), "r".to_string()], 1);
                let _ = writeln!(source, "  {gv} = {ge}");
            }
            let _ = writeln!(source, "end");
            g.callables.push((name, 1, false));
        }
        // Bounded recursion over a decreasing counter.
        _ => {
            let name = g.fresh("rec");
            let scope = vec!["k".to_string(), "acc".to_string()];
            let e = g.expr(&scope, 1);
            let _ = writeln!(source, "proc {name}(k, acc)");
            let _ = writeln!(source, "  if k > 0 then");
            let _ = writeln!(source, "    call {name}((k - 1), (acc + {e}))");
            let _ = writeln!(source, "  else");
            let _ = writeln!(source, "    print(acc)");
            let _ = writeln!(source, "  end");
            let _ = writeln!(source, "end");
            g.callables.push((name, 2, true)); // flagged: counter-first call
        }
    }
}

fn emit_stanza(g: &mut FuzzGen) {
    match g.rng.gen_range(0..9u8) {
        // Plain assignment.
        0 | 1 => {
            let scope = g.vars.clone();
            let e = g.expr(&scope, 3);
            let v = g.fresh("x");
            g.line(&format!("{v} = {e}"));
            g.vars.push(v);
        }
        // read, occasionally starved to exercise input exhaustion.
        2 => {
            let v = g.fresh("rv");
            g.line(&format!("read({v})"));
            if g.rng.gen_bool(0.95) {
                let val = g.rng.gen_range(-4i64..10);
                g.input.push(val);
            }
            g.vars.push(v);
        }
        // print of an expression.
        3 => {
            let scope = g.vars.clone();
            let e = g.expr(&scope, 3);
            g.line(&format!("print({e})"));
        }
        // A call to some generated procedure.
        4 => {
            if g.callables.is_empty() {
                let scope = g.vars.clone();
                let e = g.expr(&scope, 2);
                g.line(&format!("print({e})"));
                return;
            }
            let (name, arity, is_func) = g.callables[g.rng.gen_range(0..g.callables.len())].clone();
            let recursive = name.starts_with("rec");
            let mut args = Vec::new();
            let mut used: Vec<String> = Vec::new();
            for i in 0..arity {
                if recursive && i == 0 {
                    // Keep the recursion counter small and non-negative.
                    args.push(g.small().to_string());
                    continue;
                }
                // Bare variables pass by reference; use each at most once
                // per call and never pass a global bare (Fortran's
                // no-aliasing rule makes those calls undefined).
                let locals: Vec<String> = g
                    .vars
                    .iter()
                    .filter(|v| !g.globals.contains(v) && !used.contains(v))
                    .cloned()
                    .collect();
                if !locals.is_empty() && g.rng.gen_bool(0.4) {
                    let v = locals[g.rng.gen_range(0..locals.len())].clone();
                    used.push(v.clone());
                    args.push(v);
                } else {
                    // A depth-1 expression can collapse to a bare variable
                    // name — possibly a global — and a name actual passes
                    // by reference even when parenthesized (the parser
                    // strips parens in the AST). `+ 0` keeps the value and
                    // forces by-value binding; without it the fuzzer once
                    // generated `call bump(gl)` against a `gl`-writing
                    // callee — an aliasing-undefined program.
                    let scope = g.vars.clone();
                    args.push(format!("({} + 0)", g.expr(&scope, 1)));
                }
            }
            let arglist = args.join(", ");
            if is_func && !recursive {
                let v = g.fresh("x");
                g.line(&format!("{v} = {name}({arglist})"));
                g.vars.push(v);
            } else {
                g.line(&format!("call {name}({arglist})"));
            }
        }
        // A do-loop accumulation; step is occasionally zero (a trap).
        5 => {
            let acc = g.fresh("s");
            let iv = g.fresh("i");
            let hi = g.rng.gen_range(1..6);
            let scope = g.vars.clone();
            let e = g.expr(&scope, 2);
            g.line(&format!("{acc} = 0"));
            let step = match g.rng.gen_range(0..12u8) {
                0 => Some(0),
                1 => Some(2),
                _ => None,
            };
            match step {
                Some(s) => g.line(&format!("do {iv} = 1, {hi}, {s}")),
                None => g.line(&format!("do {iv} = 1, {hi}")),
            }
            g.line(&format!("  {acc} = ({acc} + ({iv} * {e}))"));
            g.line("end");
            g.vars.push(acc);
        }
        // A while-loop over a bounded counter.
        6 => {
            let w = g.fresh("w");
            let n = g.rng.gen_range(1..5);
            g.line(&format!("{w} = {n}"));
            g.line(&format!("while {w} > 0 do"));
            let scope = g.vars.clone();
            let e = g.expr(&scope, 1);
            g.line(&format!("  print(({w} * {e}))"));
            g.line(&format!("  {w} = ({w} - 1)"));
            g.line("end");
            g.vars.push(w);
        }
        // Array store + load; the index is usually in bounds (1..=4) but
        // occasionally 0 or 5, so the out-of-bounds trap class is covered.
        7 => {
            if g.arrays.is_empty() {
                let a = g.fresh("arr");
                let _ = writeln!(g.decls, "  integer {a}(4)");
                g.arrays.push(a);
            }
            let a = g.arrays[g.rng.gen_range(0..g.arrays.len())].clone();
            let scope = g.vars.clone();
            let e = g.expr(&scope, 2);
            let idx = match g.rng.gen_range(0..16u8) {
                0 => 0,
                1 => 5,
                n => i64::from(n % 4) + 1,
            };
            g.line(&format!("{a}({idx}) = {e}"));
            let v = g.fresh("x");
            let ridx = g.rng.gen_range(1i64..5);
            g.line(&format!("{v} = ({a}({ridx}) + 1)"));
            g.vars.push(v);
        }
        // An if/else diamond.
        _ => {
            let scope = g.vars.clone();
            let cond = g.expr(&scope, 2);
            let v = g.fresh("x");
            let e1 = g.expr(&scope, 2);
            let e2 = g.expr(&scope, 2);
            g.line(&format!("if {cond} then"));
            g.line(&format!("  {v} = {e1}"));
            g.line("else");
            g.line(&format!("  {v} = {e2}"));
            g.line("end");
            g.vars.push(v);
        }
    }
}

// ---------------------------------------------------------------------------
// Shrinking and corpus
// ---------------------------------------------------------------------------

fn same_failure(outcome: &CheckOutcome, oracle: &str, level: &str) -> bool {
    matches!(outcome, CheckOutcome::Fail { oracle: o, level: l, .. } if o == oracle && l == level)
}

/// Greedy ddmin-style minimizer: repeatedly removes line chunks (halves
/// down to single lines) as long as the reduced program still compiles
/// and fails the same oracle at the same level. `budget` caps the number
/// of candidate evaluations.
pub fn shrink(
    source: &str,
    input: &[i64],
    levels: &[FuzzLevel],
    max_steps: u64,
    oracle: &str,
    level: &str,
    budget: usize,
) -> String {
    let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
    let mut attempts = 0usize;
    let mut chunk = (lines.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < lines.len() {
            if attempts >= budget {
                return lines.join("\n") + "\n";
            }
            let end = (start + chunk).min(lines.len());
            let candidate: Vec<String> = lines[..start]
                .iter()
                .chain(lines[end..].iter())
                .cloned()
                .collect();
            if candidate.is_empty() {
                start = end;
                continue;
            }
            let text = candidate.join("\n") + "\n";
            attempts += 1;
            if same_failure(&check_case(&text, input, levels, max_steps), oracle, level) {
                lines = candidate;
                removed_any = true;
                // Do not advance: the next chunk shifted into `start`.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            return lines.join("\n") + "\n";
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Renders a violation as a self-describing corpus file: header comments
/// carry everything the replay harness needs.
pub fn render_repro(v: &Violation) -> String {
    let inputs: Vec<String> = v.input.iter().map(|x| x.to_string()).collect();
    let mut out = String::new();
    let _ = writeln!(out, "# fuzz repro (minimized)");
    let _ = writeln!(out, "# oracle: {}", v.oracle);
    let _ = writeln!(out, "# level: {}", v.level);
    let _ = writeln!(out, "# seed: {:#018x}", v.seed);
    let _ = writeln!(out, "# detail: {}", v.detail.replace('\n', " "));
    let _ = writeln!(out, "# input: {}", inputs.join(" "));
    out.push_str(&v.source);
    out
}

/// Parses the `# input:` header of a corpus file written by
/// [`render_repro`] (or hand-written in the same format).
pub fn parse_repro_input(text: &str) -> Vec<i64> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# input:") {
            return rest
                .split_whitespace()
                .filter_map(|w| w.parse::<i64>().ok())
                .collect();
        }
    }
    Vec::new()
}

/// Derives the per-iteration seed. SplitMix-style so neighbouring
/// iterations explore unrelated programs.
fn iter_seed(campaign: u64, i: u64) -> u64 {
    let mut z = campaign ^ (i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs a fuzzing campaign. Results are independent of `config.jobs`:
/// every iteration derives its own seed and the iteration fan-out is an
/// ordered deterministic map.
pub fn run_fuzz(config: &FuzzConfig, sink: &dyn ObsSink) -> FuzzReport {
    let mut report = FuzzReport {
        iters: config.iters,
        ..FuzzReport::default()
    };
    // Replay the existing corpus first: a regression caught by an old
    // repro is worth more than any number of fresh random programs.
    if let Some(dir) = &config.corpus_dir {
        replay_corpus(dir, config, sink, &mut report);
    }

    let seeds: Vec<u64> = (0..config.iters)
        .map(|i| iter_seed(config.seed, i))
        .collect();
    let outcomes = par_map(config.jobs, &seeds, |i, &s| {
        // Observability names deliberately include JSON-hostile
        // characters; the chrome-trace exporter must escape them.
        if sink.enabled() {
            let name = format!("fuzz \"iter\" \\{i}\\ §{s:x}");
            let start = sink.now();
            let case = random_case(s);
            let outcome = check_case(&case.source, &case.input, &config.levels, config.max_steps);
            sink.span(&name, "fuzz", start, sink.now().saturating_sub(start));
            (case, outcome)
        } else {
            let case = random_case(s);
            let outcome = check_case(&case.source, &case.input, &config.levels, config.max_steps);
            (case, outcome)
        }
    });

    for (case, outcome) in outcomes {
        sink.count("fuzz.iters", 1);
        match outcome {
            CheckOutcome::Pass(class) => {
                sink.count(&format!("fuzz.trap.{class}"), 1);
                *report.trap_classes.entry(class).or_insert(0) += 1;
            }
            CheckOutcome::Skip => {
                sink.count("fuzz.skipped", 1);
                report.skipped += 1;
            }
            CheckOutcome::Fail {
                oracle,
                level,
                detail,
            } => {
                sink.count("fuzz.violations", 1);
                let minimized = shrink(
                    &case.source,
                    &case.input,
                    &config.levels,
                    config.max_steps,
                    &oracle,
                    &level,
                    config.shrink_budget,
                );
                let violation = Violation {
                    seed: case.seed,
                    oracle,
                    level,
                    detail,
                    source: minimized,
                    input: case.input,
                };
                if let Some(dir) = &config.corpus_dir {
                    match write_repro(dir, &violation) {
                        Ok(path) => report.repro_paths.push(path),
                        Err(e) => {
                            eprintln!(
                                "fuzz: cannot write repro for seed {:#018x}: {e}",
                                violation.seed
                            );
                            report.corpus_write_errors += 1;
                            sink.count("fuzz.corpus.write_errors", 1);
                        }
                    }
                }
                report.violations.push(violation);
            }
        }
    }
    report
}

/// Parses the `# seed:` header of a corpus file written by
/// [`render_repro`]; 0 when absent or unparsable.
pub fn parse_repro_seed(text: &str) -> u64 {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# seed:") {
            let word = rest.trim().trim_start_matches("0x");
            return u64::from_str_radix(word, 16).unwrap_or(0);
        }
    }
    0
}

/// Replays every `.mf` repro in `dir` before the random campaign starts.
/// A missing directory is fine (nothing to replay yet); an unreadable,
/// truncated, or malformed file is skipped with a stderr diagnostic and
/// counted — one bad file must never abort the whole campaign. A repro
/// that fails its oracle again is a genuine regression and lands in
/// `violations`.
fn replay_corpus(dir: &Path, config: &FuzzConfig, sink: &dyn ObsSink, report: &mut FuzzReport) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries
        .flatten()
        .map(|d| d.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("mf"))
        .collect();
    paths.sort();
    for path in paths {
        let skip = |why: &str, report: &mut FuzzReport| {
            eprintln!("fuzz: skipping repro `{}`: {why}", path.display());
            report.corpus_skipped += 1;
            sink.count("fuzz.corpus.skipped", 1);
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                skip(&format!("unreadable ({e})"), report);
                continue;
            }
        };
        // Compile up front: `check_case` would report a malformed file
        // as a "generator" violation, but a truncated or hand-mangled
        // repro is corpus damage, not an optimizer bug.
        if let Err(e) = ipcp_ir::compile_to_ir(&text) {
            skip(&format!("malformed ({})", e.first().message), report);
            continue;
        }
        let input = parse_repro_input(&text);
        match check_case(&text, &input, &config.levels, config.max_steps) {
            CheckOutcome::Fail {
                oracle,
                level,
                detail,
            } => {
                sink.count("fuzz.corpus.regressions", 1);
                report.violations.push(Violation {
                    seed: parse_repro_seed(&text),
                    oracle,
                    level,
                    detail,
                    source: text,
                    input,
                });
            }
            _ => {
                report.corpus_replayed += 1;
                sink.count("fuzz.corpus.replayed", 1);
            }
        }
    }
}

fn write_repro(dir: &Path, v: &Violation) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("fuzz-{}-{:016x}.mf", v.oracle, v.seed));
    std::fs::write(&path, render_repro(v))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_obs::NoopSink;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 1993] {
            let a = random_case(seed);
            let b = random_case(seed);
            assert_eq!(a.source, b.source);
            assert_eq!(a.input, b.input);
        }
    }

    #[test]
    fn generated_programs_compile_and_validate() {
        for i in 0..60 {
            let case = random_case(iter_seed(7, i));
            let ir = ipcp_ir::compile_to_ir(&case.source).unwrap_or_else(|e| {
                panic!(
                    "seed {:#x} does not compile: {}\n{}",
                    case.seed,
                    e.first().message,
                    case.source
                )
            });
            ipcp_ir::validate::validate(&ir)
                .unwrap_or_else(|e| panic!("seed {:#x} IR invalid: {e:?}", case.seed));
        }
    }

    #[test]
    fn generated_programs_never_alias() {
        // The no-alias rule is the optimizer's license; a generated
        // program that violates it makes the differential oracle report
        // nonsense (found in the wild: a bare global actual to a
        // global-writing callee — argument expressions are parenthesized
        // to force by-value precisely because of this).
        use ipcp_analysis::{check_aliasing, compute_modref, CallGraph};
        for i in 0..200 {
            let case = random_case(iter_seed(77, i));
            let program = ipcp_ir::compile_to_ir(&case.source).unwrap();
            let cg = CallGraph::new(&program);
            let modref = compute_modref(&program, &cg);
            let violations = check_aliasing(&program, &modref);
            assert!(
                violations.is_empty(),
                "seed {:#x} generated an aliasing-undefined program:\n{}",
                case.seed,
                case.source
            );
        }
    }

    #[test]
    fn generator_hits_interesting_traps() {
        // Across a modest sweep the baseline must exercise at least
        // division traps — the arithmetic edges are the whole point.
        let config = FuzzConfig {
            iters: 120,
            seed: 2024,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&config, &NoopSink);
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
        assert!(
            report.trap_classes.contains_key("div-by-zero"),
            "{:?}",
            report.trap_classes
        );
        assert!(
            report.trap_classes.contains_key("ok"),
            "{:?}",
            report.trap_classes
        );
    }

    #[test]
    fn campaign_is_independent_of_jobs() {
        let base = FuzzConfig {
            iters: 20,
            seed: 5,
            ..FuzzConfig::default()
        };
        let seq = run_fuzz(&base, &NoopSink);
        let par = run_fuzz(
            &FuzzConfig {
                jobs: 4,
                ..base.clone()
            },
            &NoopSink,
        );
        assert_eq!(seq.trap_classes, par.trap_classes);
        assert_eq!(seq.skipped, par.skipped);
        assert_eq!(seq.violations.len(), par.violations.len());
    }

    #[test]
    fn cond_ladder_campaign_is_clean() {
        // The full ladder including conditional propagation: both
        // oracles (differential at cond, per-procedure monotonicity
        // poly→cond) must hold over a seeded random campaign.
        let config = FuzzConfig {
            iters: 40,
            seed: 1993,
            levels: FuzzLevel::ALL.to_vec(),
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&config, &NoopSink);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn check_case_accepts_an_infeasible_branch_prune() {
        // `dispatch(1)` makes the else-branch infeasible, so cond
        // sharpens kernel.k from ⊥ (3 ∧ 9) to Const(3) — strictly more
        // constants than poly, which the per-procedure metamorphic rule
        // must accept (and the differential oracle must find sound).
        let src = "proc kernel(k)\nprint((k + 1))\nend\n\
                   proc dispatch(mode)\nif (mode == 1) then\ncall kernel(3)\n\
                   else\ncall kernel(9)\nend\nend\n\
                   main\ncall dispatch(1)\nend\n";
        assert_eq!(
            check_case(src, &[], &FuzzLevel::ALL, 100_000),
            CheckOutcome::Pass("ok".into())
        );
        let program = ipcp_ir::compile_to_ir(src).unwrap();
        let poly = analyze(
            &program,
            &FuzzLevel::Forward(JumpFunctionKind::Polynomial).config(),
        );
        let cond = analyze(&program, &FuzzLevel::Conditional.config());
        let count = |o: &ipcp_core::AnalysisOutcome| -> usize {
            o.constants
                .iter()
                .map(std::collections::BTreeMap::len)
                .sum()
        };
        assert!(count(&cond) > count(&poly), "cond must sharpen dispatch");
    }

    #[test]
    fn check_case_flags_a_seeded_semantic_break() {
        // Sanity-check the differential oracle itself: a program whose
        // optimized form we corrupt by hand must be flagged. Simulate by
        // checking two different programs through the same comparator.
        let src = "main\nx = 4\nprint((x / 2))\nend\n";
        assert_eq!(
            check_case(src, &[], &FuzzLevel::ALL, 100_000),
            CheckOutcome::Pass("ok".into())
        );
        // And a trap-class baseline is classified, not an error.
        let trap = "main\nread(n)\nprint((1 / n))\nend\n";
        assert_eq!(
            check_case(trap, &[0], &FuzzLevel::ALL, 100_000),
            CheckOutcome::Pass("div-by-zero".into())
        );
    }

    #[test]
    fn shrink_preserves_the_failure_signature() {
        // Build an artificial failure via the "generator" oracle: an
        // uncompilable program stays uncompilable while irrelevant lines
        // are stripped.
        let src = "main\nx = 1\nprint(x)\ny = (2 +\nend\n";
        let outcome = check_case(src, &[], &FuzzLevel::ALL, 10_000);
        assert!(same_failure(&outcome, "generator", "-"), "{outcome:?}");
        let small = shrink(src, &[], &FuzzLevel::ALL, 10_000, "generator", "-", 500);
        assert!(small.lines().count() < src.lines().count());
        assert!(same_failure(
            &check_case(&small, &[], &FuzzLevel::ALL, 10_000),
            "generator",
            "-"
        ));
    }

    #[test]
    fn traced_campaign_exports_a_valid_chrome_trace() {
        // Fuzz span names contain quotes, backslashes, and non-ASCII on
        // purpose: the whole campaign must still export a trace the
        // validator accepts, with the counters present in the snapshot.
        let sink = ipcp_obs::TraceSink::new();
        let config = FuzzConfig {
            iters: 8,
            seed: 3,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&config, &sink);
        assert!(report.violations.is_empty());
        let snapshot = sink.snapshot();
        assert_eq!(snapshot.counters.get("fuzz.iters"), Some(&8));
        assert!(snapshot.spans.iter().any(|s| s.name.contains('"')));
        let json = ipcp_obs::chrome_trace_json(&snapshot);
        let stats = ipcp_obs::validate_chrome_trace(&json).expect("valid trace");
        assert!(stats.spans >= 8, "{stats:?}");
    }

    #[test]
    fn repro_roundtrip_preserves_input() {
        let v = Violation {
            seed: 0xabcd,
            oracle: "differential".into(),
            level: "poly".into(),
            detail: "before: ok [1] / after: ok [2]".into(),
            source: "main\nprint(1)\nend\n".into(),
            input: vec![3, -4, 5],
        };
        let text = render_repro(&v);
        assert_eq!(parse_repro_input(&text), vec![3, -4, 5]);
        assert_eq!(parse_repro_seed(&text), 0xabcd);
        // The repro body still compiles (comments are stripped by the lexer).
        assert!(ipcp_ir::compile_to_ir(&text).is_ok());
    }

    fn temp_corpus(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ipcp-fuzz-corpus-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn corpus_replay_counts_clean_repros() {
        let dir = temp_corpus("clean");
        std::fs::write(dir.join("good.mf"), "# input: \nmain\nprint(1)\nend\n").unwrap();
        let config = FuzzConfig {
            iters: 2,
            seed: 5,
            corpus_dir: Some(dir.clone()),
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&config, &NoopSink);
        assert_eq!(report.corpus_replayed, 1);
        assert_eq!(report.corpus_skipped, 0);
        assert!(report.violations.is_empty());
        assert!(report.summary().contains("corpus: 1 replayed, 0 skipped"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_replay_skips_malformed_files_without_aborting() {
        let dir = temp_corpus("damage");
        // A truncated repro (no `end`), a syntactically hostile file, and
        // one good repro: the campaign must survive all three.
        std::fs::write(dir.join("a-truncated.mf"), "main\nprint(").unwrap();
        std::fs::write(dir.join("b-garbage.mf"), "\x00\x01 not minifor at all").unwrap();
        std::fs::write(dir.join("c-good.mf"), "main\nprint(7)\nend\n").unwrap();
        // Non-.mf files are not corpus entries and are ignored outright.
        std::fs::write(dir.join("README.txt"), "not a repro").unwrap();
        let config = FuzzConfig {
            iters: 1,
            seed: 9,
            corpus_dir: Some(dir.clone()),
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&config, &NoopSink);
        assert_eq!(report.corpus_skipped, 2);
        assert_eq!(report.corpus_replayed, 1);
        assert!(report.violations.is_empty(), "damage is not a violation");
        assert!(report.summary().contains("corpus: 1 replayed, 2 skipped"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_dir_is_silently_fine() {
        let dir =
            std::env::temp_dir().join(format!("ipcp-fuzz-corpus-missing-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = FuzzConfig {
            iters: 2,
            seed: 13,
            corpus_dir: Some(dir.clone()),
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&config, &NoopSink);
        assert_eq!(report.corpus_replayed + report.corpus_skipped, 0);
        assert!(report.violations.is_empty());
        assert!(!report.summary().contains("corpus:"));
    }
}
