//! # ipcp-suite — synthetic benchmark programs
//!
//! The paper evaluated twelve scientific FORTRAN programs from the SPEC
//! and PERFECT suites. Those sources cannot be redistributed (and the
//! study predates easy archival), so this crate *synthesizes* stand-ins:
//! deterministic Minifor programs whose size/modularity match Table 1 and
//! whose constant-flow structure is fitted so the analyzer reproduces the
//! relative shape of Tables 2 and 3 (see `DESIGN.md` §2 and
//! `EXPERIMENTS.md` for the fitting model and the measured numbers).
//!
//! * [`specs`] — the twelve program specifications (motif counts),
//! * [`gen`] — the source generator,
//! * [`stats`] — Table 1 statistics,
//! * [`paper`] — the paper's reference numbers for side-by-side output,
//! * [`fuzz`] — differential/metamorphic semantic-preservation oracles.

pub mod fuzz;
pub mod gen;
pub mod paper;
pub mod specs;
pub mod stats;

pub use fuzz::{
    check_case, parse_repro_input, random_case, run_fuzz, CheckOutcome, FuzzCase, FuzzConfig,
    FuzzLevel, FuzzReport, Violation,
};
pub use gen::{generate, generate_all, generate_scale, GeneratedProgram, ScaleSpec};
pub use paper::{paper_row, PaperRow, PaperSizeRow, PAPER_RESULTS, PAPER_SIZES};
pub use specs::{all_specs, spec, Spec};
pub use stats::{program_stats, ProgramStats};
