//! Program characteristics — the paper's Table 1.
//!
//! Reports non-blank, non-comment line counts, procedure counts, and the
//! mean/median lines per procedure. The scanner assumes the layout both
//! the generator and the pretty printer produce: procedure headers
//! (`proc` / `func` / `main`) start at column 0 and are closed by an
//! unindented `end`.

/// Size and modularity statistics of one program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramStats {
    /// Non-blank, non-comment lines.
    pub lines: usize,
    /// Number of procedures (including `main`).
    pub procedures: usize,
    /// Mean lines per procedure.
    pub mean_proc_lines: f64,
    /// Median lines per procedure.
    pub median_proc_lines: f64,
    /// Largest procedure, in lines.
    pub max_proc_lines: usize,
}

/// Computes statistics for a Minifor source text.
pub fn program_stats(source: &str) -> ProgramStats {
    let mut lines = 0usize;
    let mut proc_lines: Vec<usize> = Vec::new();
    let mut current: Option<usize> = None;

    for raw in source.lines() {
        let without_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if without_comment.trim().is_empty() {
            continue;
        }
        lines += 1;

        let at_col0 = !raw.starts_with(' ') && !raw.starts_with('\t');
        let trimmed = without_comment.trim();
        let is_header = at_col0
            && (trimmed.starts_with("proc ")
                || trimmed.starts_with("func ")
                || trimmed == "main"
                || trimmed.starts_with("main "));
        if is_header {
            current = Some(1);
            continue;
        }
        if let Some(count) = current.as_mut() {
            *count += 1;
            if at_col0 && trimmed == "end" {
                proc_lines.push(*count);
                current = None;
            }
        }
    }
    if let Some(count) = current {
        proc_lines.push(count);
    }

    let procedures = proc_lines.len();
    let mean = if procedures == 0 {
        0.0
    } else {
        proc_lines.iter().sum::<usize>() as f64 / procedures as f64
    };
    let median = if procedures == 0 {
        0.0
    } else {
        let mut sorted = proc_lines.clone();
        sorted.sort_unstable();
        let mid = procedures / 2;
        if procedures % 2 == 1 {
            sorted[mid] as f64
        } else {
            (sorted[mid - 1] + sorted[mid]) as f64 / 2.0
        }
    };
    let max = proc_lines.iter().copied().max().unwrap_or(0);

    ProgramStats {
        lines,
        procedures,
        mean_proc_lines: mean,
        median_proc_lines: median,
        max_proc_lines: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_program() {
        let src = "global n = 1\n\nproc f()\n  x = 1\nend\nmain\n  call f()\nend\n";
        let s = program_stats(src);
        assert_eq!(s.lines, 7);
        assert_eq!(s.procedures, 2);
        assert_eq!(s.mean_proc_lines, 3.0);
        assert_eq!(s.median_proc_lines, 3.0);
        assert_eq!(s.max_proc_lines, 3);
    }

    #[test]
    fn comments_and_blanks_excluded() {
        let src = "# header\nmain\n  # comment line\n  x = 1  # trailing\n\nend\n";
        let s = program_stats(src);
        assert_eq!(s.lines, 3); // main, x = 1, end
        assert_eq!(s.procedures, 1);
    }

    #[test]
    fn nested_ends_do_not_close_procs() {
        let src = "main\n  if x then\n    y = 1\n  end\n  z = 2\nend\n";
        let s = program_stats(src);
        assert_eq!(s.procedures, 1);
        assert_eq!(s.max_proc_lines, 6);
    }

    #[test]
    fn median_even_count() {
        let src =
            "proc a()\nend\nproc b()\n  x = 1\n  y = 2\nend\nmain\nend\nproc c()\n  q = 1\nend\n";
        let s = program_stats(src);
        // Proc lengths: a=2, b=4, main=2, c=3 → sorted [2,2,3,4], median 2.5.
        assert_eq!(s.procedures, 4);
        assert_eq!(s.median_proc_lines, 2.5);
    }

    #[test]
    fn empty_source() {
        let s = program_stats("");
        assert_eq!(s.lines, 0);
        assert_eq!(s.procedures, 0);
        assert_eq!(s.mean_proc_lines, 0.0);
    }

    #[test]
    fn skew_visible_in_mean_vs_median() {
        let spec = crate::specs::spec("fpppp").unwrap();
        let program = crate::gen::generate(&spec);
        let s = program_stats(&program.source);
        assert!(
            s.mean_proc_lines > s.median_proc_lines * 1.3,
            "skewed program should have mean ≫ median: mean {} median {}",
            s.mean_proc_lines,
            s.median_proc_lines
        );
    }

    #[test]
    fn balanced_program_mean_close_to_median() {
        let spec = crate::specs::spec("qcd").unwrap();
        let program = crate::gen::generate(&spec);
        let s = program_stats(&program.source);
        assert!(
            s.mean_proc_lines <= s.median_proc_lines * 2.2 + 10.0,
            "mean {} median {}",
            s.mean_proc_lines,
            s.median_proc_lines
        );
    }
}
