//! Specifications of the twelve synthetic benchmark programs.
//!
//! The paper evaluated twelve SPEC/PERFECT FORTRAN programs. Their
//! sources are not available here, so each program is *synthesized* from
//! a spec describing (a) its size and modularity (Table 1) and (b) the
//! mix of constant-flow motifs that produce its Table 2/3 behaviour. The
//! motif counts were fitted from the paper's numbers with the linear
//! model documented in EXPERIMENTS.md:
//!
//! * `lit` — uses of formals that receive source literals at a call site
//!   (found by every jump function);
//! * `loc_safe` — uses of purely local constants (found even by the
//!   intraprocedural baseline, surviving without MOD);
//! * `loc_mod` — uses of a constant-valued global after an innocuous call
//!   inside one procedure (needs MOD information, found by the baseline);
//! * `comp_safe` / `comp_mod` — uses of formals receiving locally
//!   *computed* constants (need the intraprocedural-constant jump
//!   function or better; the `_mod` variant routes the value through a
//!   global across an innocuous call);
//! * `chain_safe` / `chain_mod` — uses of formals at the end of a
//!   pass-through chain (need the pass-through jump function or better);
//! * `init_uses` — uses of globals assigned constants by an
//!   initialization routine (need return jump functions — the `ocean`
//!   pattern);
//! * `dead_guard` — uses guarded by a configuration flag whose dead arm
//!   blocks the jump function until dead code elimination removes it
//!   (the *complete propagation* motif).

/// Shape and motif specification of one synthetic benchmark program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    /// Program name (matches the paper's benchmark name).
    pub name: &'static str,
    /// Deterministic generation seed.
    pub seed: u64,
    /// Target non-comment line count (Table 1).
    pub target_lines: usize,
    /// Target procedure count (Table 1).
    pub target_procs: usize,
    /// Whether one procedure carries most of the code (the paper notes
    /// `fpppp` and `simple` are skewed this way).
    pub skewed: bool,
    /// Literal-argument uses.
    pub lit: usize,
    /// Safe local-constant uses.
    pub loc_safe: usize,
    /// MOD-sensitive local global-constant uses.
    pub loc_mod: usize,
    /// Computed-constant argument uses (safe variant).
    pub comp_safe: usize,
    /// Computed-constant argument uses routed through a global across an
    /// innocuous call (lost without MOD).
    pub comp_mod: usize,
    /// Pass-through chain uses (safe variant).
    pub chain_safe: usize,
    /// Pass-through chain uses routed through a global (lost without MOD).
    pub chain_mod: usize,
    /// Length of each pass-through chain.
    pub chain_depth: usize,
    /// Uses of init-routine-assigned globals (return-jump-function
    /// dependent).
    pub init_uses: usize,
    /// Dead-guard uses exposed only by complete propagation.
    pub dead_guard: usize,
    /// Maximum countable uses placed in one procedure (scaled up for the
    /// small programs so motif procedures fit the Table 1 procedure
    /// budget).
    pub uses_per_proc: usize,
}

impl Spec {
    /// Expected substitution totals per configuration under the fitted
    /// model (see module docs); used by shape tests with tolerance.
    pub fn expected_polynomial(&self) -> usize {
        self.lit
            + self.loc_safe
            + self.loc_mod
            + self.comp_safe
            + self.comp_mod
            + self.chain_safe
            + self.chain_mod
            + self.init_uses
    }

    /// Expected literal-jump-function total.
    pub fn expected_literal(&self) -> usize {
        self.lit + self.loc_safe + self.loc_mod
    }

    /// Expected intraprocedural-constant-jump-function total.
    pub fn expected_intraprocedural(&self) -> usize {
        self.expected_literal() + self.comp_safe + self.comp_mod + self.init_uses
    }

    /// Expected total without return jump functions.
    pub fn expected_no_rjf(&self) -> usize {
        self.expected_polynomial() - self.init_uses
    }

    /// Expected total without MOD information.
    pub fn expected_no_mod(&self) -> usize {
        self.lit + self.loc_safe + self.comp_safe + self.chain_safe
    }

    /// Expected purely intraprocedural baseline total.
    pub fn expected_baseline(&self) -> usize {
        self.loc_safe + self.loc_mod
    }

    /// Expected complete-propagation total.
    pub fn expected_complete(&self) -> usize {
        self.expected_polynomial() + self.dead_guard
    }
}

/// The twelve benchmark specs, in the paper's table order.
pub fn all_specs() -> Vec<Spec> {
    vec![
        Spec {
            name: "adm",
            seed: 0xad30,
            target_lines: 6105,
            target_procs: 97,
            skewed: false,
            lit: 5,
            loc_safe: 20,
            loc_mod: 85,
            comp_safe: 0,
            comp_mod: 0,
            chain_safe: 0,
            chain_mod: 0,
            chain_depth: 3,
            init_uses: 0,
            dead_guard: 0,
            uses_per_proc: 8,
        },
        Spec {
            name: "doduc",
            seed: 0xd0d0c,
            target_lines: 5334,
            target_procs: 41,
            skewed: false,
            lit: 283,
            loc_safe: 2,
            loc_mod: 1,
            comp_safe: 1,
            comp_mod: 0,
            chain_safe: 0,
            chain_mod: 0,
            chain_depth: 3,
            init_uses: 2,
            dead_guard: 0,
            uses_per_proc: 12,
        },
        Spec {
            name: "fpppp",
            seed: 0xf9999,
            target_lines: 2718,
            target_procs: 37,
            skewed: true,
            lit: 11,
            loc_safe: 16,
            loc_mod: 22,
            comp_safe: 1,
            comp_mod: 0,
            chain_safe: 6,
            chain_mod: 0,
            chain_depth: 4,
            init_uses: 4,
            dead_guard: 0,
            uses_per_proc: 8,
        },
        Spec {
            name: "linpackd",
            seed: 0x11924,
            target_lines: 797,
            target_procs: 11,
            skewed: false,
            lit: 20,
            loc_safe: 13,
            loc_mod: 61,
            comp_safe: 0,
            comp_mod: 76,
            chain_safe: 0,
            chain_mod: 0,
            chain_depth: 3,
            init_uses: 0,
            dead_guard: 0,
            uses_per_proc: 40,
        },
        Spec {
            name: "matrix300",
            seed: 0x300300,
            target_lines: 439,
            target_procs: 7,
            skewed: false,
            lit: 2,
            loc_safe: 0,
            loc_mod: 69,
            comp_safe: 0,
            comp_mod: 51,
            chain_safe: 16,
            chain_mod: 0,
            chain_depth: 3,
            init_uses: 0,
            dead_guard: 0,
            uses_per_proc: 40,
        },
        Spec {
            name: "mdg",
            seed: 0x3d9,
            target_lines: 1238,
            target_procs: 16,
            skewed: false,
            lit: 0,
            loc_safe: 30,
            loc_mod: 1,
            comp_safe: 0,
            comp_mod: 8,
            chain_safe: 1,
            chain_mod: 0,
            chain_depth: 2,
            init_uses: 1,
            dead_guard: 0,
            uses_per_proc: 8,
        },
        Spec {
            name: "ocean",
            seed: 0x0cea4,
            target_lines: 1728,
            target_procs: 36,
            skewed: false,
            lit: 1,
            loc_safe: 55,
            loc_mod: 0,
            comp_safe: 5,
            comp_mod: 0,
            chain_safe: 0,
            chain_mod: 0,
            chain_depth: 3,
            init_uses: 132,
            dead_guard: 10,
            uses_per_proc: 8,
        },
        Spec {
            name: "qcd",
            seed: 0x9cd,
            target_lines: 2279,
            target_procs: 35,
            skewed: false,
            lit: 1,
            loc_safe: 168,
            loc_mod: 11,
            comp_safe: 0,
            comp_mod: 0,
            chain_safe: 0,
            chain_mod: 0,
            chain_depth: 3,
            init_uses: 0,
            dead_guard: 0,
            uses_per_proc: 8,
        },
        Spec {
            name: "simple",
            seed: 0x51395e,
            target_lines: 805,
            target_procs: 8,
            skewed: true,
            lit: 0,
            loc_safe: 2,
            loc_mod: 171,
            comp_safe: 0,
            comp_mod: 5,
            chain_safe: 0,
            chain_mod: 4,
            chain_depth: 3,
            init_uses: 0,
            dead_guard: 0,
            uses_per_proc: 48,
        },
        Spec {
            name: "snasa7",
            seed: 0x4a5a7,
            target_lines: 696,
            target_procs: 17,
            skewed: false,
            lit: 0,
            loc_safe: 221,
            loc_mod: 33,
            comp_safe: 82,
            comp_mod: 0,
            chain_safe: 0,
            chain_mod: 0,
            chain_depth: 3,
            init_uses: 0,
            dead_guard: 0,
            uses_per_proc: 24,
        },
        Spec {
            name: "spec77",
            seed: 0x59ec77,
            target_lines: 2904,
            target_procs: 65,
            skewed: false,
            lit: 21,
            loc_safe: 21,
            loc_mod: 61,
            comp_safe: 33,
            comp_mod: 0,
            chain_safe: 0,
            chain_mod: 0,
            chain_depth: 3,
            init_uses: 0,
            dead_guard: 4,
            uses_per_proc: 8,
        },
        Spec {
            name: "trfd",
            seed: 0x79fd,
            target_lines: 401,
            target_procs: 8,
            skewed: false,
            lit: 1,
            loc_safe: 9,
            loc_mod: 6,
            comp_safe: 0,
            comp_mod: 0,
            chain_safe: 0,
            chain_mod: 0,
            chain_depth: 3,
            init_uses: 0,
            dead_guard: 0,
            uses_per_proc: 8,
        },
    ]
}

/// Finds a spec by benchmark name.
pub fn spec(name: &str) -> Option<Spec> {
    all_specs().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_programs() {
        let specs = all_specs();
        assert_eq!(specs.len(), 12);
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "adm",
                "doduc",
                "fpppp",
                "linpackd",
                "matrix300",
                "mdg",
                "ocean",
                "qcd",
                "simple",
                "snasa7",
                "spec77",
                "trfd"
            ]
        );
    }

    #[test]
    fn lookup() {
        assert!(spec("ocean").is_some());
        assert!(spec("nope").is_none());
    }

    #[test]
    fn expected_totals_roughly_match_paper() {
        // Fitted model vs paper Table 2 (polynomial, with return JFs).
        let paper: &[(&str, usize)] = &[
            ("adm", 110),
            ("doduc", 289),
            ("fpppp", 60),
            ("linpackd", 170),
            ("matrix300", 138),
            ("mdg", 41),
            ("ocean", 194),
            ("qcd", 180),
            ("simple", 183),
            ("snasa7", 336),
            ("spec77", 137),
            ("trfd", 16),
        ];
        for (name, expect) in paper {
            let s = spec(name).unwrap();
            let got = s.expected_polynomial();
            assert!(
                got.abs_diff(*expect) <= 1,
                "{name}: model {got} vs paper {expect}"
            );
        }
    }

    #[test]
    fn expected_hierarchy_holds() {
        for s in all_specs() {
            assert!(
                s.expected_literal() <= s.expected_intraprocedural(),
                "{}",
                s.name
            );
            assert!(
                s.expected_intraprocedural() <= s.expected_polynomial(),
                "{}",
                s.name
            );
            assert!(s.expected_no_rjf() <= s.expected_polynomial(), "{}", s.name);
            assert!(s.expected_no_mod() <= s.expected_polynomial(), "{}", s.name);
            assert!(
                s.expected_baseline() <= s.expected_polynomial(),
                "{}",
                s.name
            );
            assert!(
                s.expected_complete() >= s.expected_polynomial(),
                "{}",
                s.name
            );
        }
    }

    #[test]
    fn ocean_is_the_return_jf_story() {
        let s = spec("ocean").unwrap();
        assert!(s.expected_polynomial() as f64 / s.expected_no_rjf() as f64 > 2.5);
    }
}
