//! Deterministic Minifor source generator for the benchmark suite.
//!
//! Each [`Spec`] is turned into a complete, runnable Minifor program whose
//! *countable substitution sites* are produced in exact, motif-controlled
//! numbers (see [`crate::specs`]). Every procedure is padded with
//! analysis-neutral "noise" stanzas (array/loop/real arithmetic over a
//! `read` input, which can never be constant) so the program approaches
//! the paper's Table 1 size figures with the "fairly even distribution of
//! code throughout the procedures" the paper describes; the two programs
//! the paper flags as skewed (`fpppp`, `simple`) concentrate a large
//! share of their lines in one big routine instead.
//!
//! Generation is deterministic: the same spec always yields byte-identical
//! source (the RNG is seeded from the spec). When a small program's motif
//! counts require more procedures than its Table 1 target, the constant
//! structure wins and the procedure count overshoots (documented in
//! EXPERIMENTS.md).

use crate::specs::Spec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// A generated benchmark program.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// Benchmark name.
    pub name: String,
    /// Minifor source text.
    pub source: String,
    /// Number of `read` statements executed on the main path.
    pub reads_needed: usize,
}

impl GeneratedProgram {
    /// A deterministic input vector long enough to satisfy every `read`.
    pub fn input(&self) -> Vec<i64> {
        (0..self.reads_needed as i64).map(|i| (i % 7) + 1).collect()
    }
}

/// Generates the program described by `spec`.
pub fn generate(spec: &Spec) -> GeneratedProgram {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Size procedures so the total approaches the line target even when
    // the motif structure forces more procedures than Table 1 lists; a
    // skewed program reserves its big routine's share up front.
    let estimated_procs = motif_proc_count(spec).max(spec.target_procs);
    let big_share = if spec.skewed {
        spec.target_lines * 2 / 5
    } else {
        0
    };
    let avg = (spec.target_lines.saturating_sub(big_share) / estimated_procs.max(1)).max(6);
    let mut g = Gen {
        globals: String::new(),
        procs: String::new(),
        main_body: String::new(),
        proc_count: 0,
        reads: 1, // read(gnz) at the top of main
        avg,
    };
    // The never-constant seed every noise stanza reads.
    g.push_global("global gnz\n");
    g.main_line("read(gnz)");

    // The innocuous callee used by MOD-sensitive motifs: modifies nothing.
    g.emit_proc("proc inert()".into(), "  t = 1\n".into(), &mut rng, false);

    // A shared integer mixer used by noise stanzas.
    g.push_proc("func mix(a, b)\n  return (a * 31 + b) % 1009\nend\n");

    emit_literal_leaves(&mut g, spec, &mut rng);
    emit_loc_safe(&mut g, spec, &mut rng);
    emit_loc_mod(&mut g, spec, &mut rng);
    emit_computed(&mut g, spec, &mut rng, /*mod_variant=*/ false);
    emit_computed(&mut g, spec, &mut rng, /*mod_variant=*/ true);
    emit_chains(&mut g, spec, &mut rng, /*mod_variant=*/ false);
    emit_chains(&mut g, spec, &mut rng, /*mod_variant=*/ true);
    emit_init_users(&mut g, spec, &mut rng);
    emit_dead_guard(&mut g, spec, &mut rng);

    emit_noise(&mut g, spec, &mut rng);

    let mut source = String::new();
    source.push_str(&g.globals);
    source.push_str(&g.procs);
    source.push_str("main\n");
    source.push_str(&g.main_body);
    source.push_str("end\n");

    GeneratedProgram {
        name: spec.name.to_string(),
        source,
        reads_needed: g.reads,
    }
}

/// Generates all twelve benchmark programs.
pub fn generate_all() -> Vec<GeneratedProgram> {
    crate::specs::all_specs().iter().map(generate).collect()
}

/// Shape of a scale-study program: a synthetic call graph stressing the
/// analysis pipeline at 10⁵-procedure size rather than reproducing a
/// Table 1 benchmark. Three structural stressors, all configurable:
///
/// * **deep SCC towers** — stacked mutually-recursive pairs whose
///   condensation is a long chain, forcing many narrow solver/RJF waves;
/// * **wide fan-out hubs** — procedures with dozens of distinct callees,
///   forcing broad waves and big per-wave merges;
/// * **heavy globals** — an init routine assigning constants to a large
///   global table read throughout, growing every procedure's MOD/REF and
///   slot universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleSpec {
    /// Target procedure count (floored to 16).
    pub procs: usize,
    /// RNG seed for constant arguments and global wiring.
    pub seed: u64,
    /// Procedures per recursive tower; the condensation depth is about
    /// half this (procedures pair into 2-cycles).
    pub tower_height: usize,
    /// Distinct callees per fan-out hub.
    pub fanout: usize,
    /// Globals initialized to constants and read program-wide.
    pub globals: usize,
}

impl ScaleSpec {
    /// The default shape at `procs` procedures: 64-high towers, 32-wide
    /// hubs, a 256-entry global table (each clamped down for tiny sizes).
    pub fn with_procs(procs: usize, seed: u64) -> Self {
        let procs = procs.max(16);
        ScaleSpec {
            procs,
            seed,
            tower_height: 64.min(procs / 4).max(2),
            fanout: 32.min(procs / 4).max(2),
            globals: 256.min(procs / 4).max(1),
        }
    }
}

/// Generates the scale-study program described by `spec`. Deterministic:
/// the same spec yields byte-identical source. The program is for
/// *analysis* benchmarking — it validates and would terminate if run,
/// but it is not part of the Table 1 suite and reads no input.
pub fn generate_scale(spec: &ScaleSpec) -> GeneratedProgram {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5ca1e);
    let procs = spec.procs.max(16);
    let height = spec.tower_height.max(2);
    let fanout = spec.fanout.max(2);
    let nglobals = spec.globals.max(1);

    let mut globals = String::new();
    let mut body = String::new();
    let mut main_body = String::new();
    let mut emitted = 0usize;

    // Heavy globals: one init routine assigns constants to the whole
    // table; readers below meet them across procedures.
    for j in 0..nglobals {
        let _ = writeln!(globals, "global gs{j}");
    }
    body.push_str("proc sinit()\n");
    for j in 0..nglobals {
        let _ = writeln!(body, "  gs{j} = {}", (j as i64 % 97) * 3 + 1);
    }
    body.push_str("end\n");
    emitted += 1;
    main_body.push_str("  call sinit()\n");

    // Deep SCC towers: ~30% of the budget. Procedure `i` descends to
    // `i + 1`; every odd `i` also climbs back to `i - 1`, pairing the
    // tower into stacked 2-SCCs whose condensation is a chain of depth
    // height/2 — the worst case for wave scheduling.
    let tower_budget = procs.saturating_sub(emitted + 1) * 3 / 10;
    let towers = (tower_budget / height).max(1);
    for t in 0..towers {
        for i in 0..height {
            let _ = writeln!(body, "proc twr{t}x{i}(n, v)");
            if i + 1 < height {
                let _ = writeln!(body, "  if n > 0 then");
                let _ = writeln!(body, "    call twr{t}x{}(n - 1, v + 1)", i + 1);
                let _ = writeln!(body, "  end");
            } else {
                let _ = writeln!(body, "  print(v + n)");
            }
            if i % 2 == 1 {
                let _ = writeln!(body, "  if n > 1 then");
                let _ = writeln!(body, "    call twr{t}x{}(n - 2, v)", i - 1);
                let _ = writeln!(body, "  end");
            }
            body.push_str("end\n");
            emitted += 1;
        }
        let depth = rng.gen_range(3..9);
        let cv = rng.gen_range(1..100);
        let _ = writeln!(main_body, "  call twr{t}x0({depth}, {cv})");
    }

    // Wide fan-out hubs: ~50% of the remaining budget. Every hub calls
    // `fanout` distinct leaves with constant arguments; each leaf reads
    // one global, so constants flow through both formals and the table.
    let hub_budget = procs.saturating_sub(emitted + 1) / 2;
    let hubs = (hub_budget / (fanout + 1)).max(1);
    for h in 0..hubs {
        for j in 0..fanout {
            let g = rng.gen_range(0..nglobals);
            let _ = writeln!(body, "proc fl{h}x{j}(p)");
            let _ = writeln!(body, "  print(p + gs{g})");
            body.push_str("end\n");
            emitted += 1;
        }
        let _ = writeln!(body, "proc hub{h}()");
        for j in 0..fanout {
            let c = rng.gen_range(1..1000);
            let _ = writeln!(body, "  call fl{h}x{j}({c})");
        }
        body.push_str("end\n");
        emitted += 1;
        let _ = writeln!(main_body, "  call hub{h}()");
    }

    // Global readers fill the rest of the budget.
    let readers = procs.saturating_sub(emitted + 1);
    for r in 0..readers {
        let a = rng.gen_range(0..nglobals);
        let b = rng.gen_range(0..nglobals);
        let _ = writeln!(body, "proc rdr{r}()");
        let _ = writeln!(body, "  print(gs{a} + gs{b})");
        body.push_str("end\n");
        let _ = writeln!(main_body, "  call rdr{r}()");
    }

    let mut source = globals;
    source.push_str(&body);
    source.push_str("main\n");
    source.push_str(&main_body);
    source.push_str("end\n");

    GeneratedProgram {
        name: format!("scale-{}p-s{}", procs, spec.seed),
        source,
        reads_needed: 0,
    }
}

struct Gen {
    globals: String,
    procs: String,
    main_body: String,
    proc_count: usize,
    reads: usize,
    /// Average lines-per-procedure target.
    avg: usize,
}

impl Gen {
    fn push_proc(&mut self, text: &str) {
        self.procs.push_str(text);
        self.proc_count += 1;
    }

    fn push_global(&mut self, decl: &str) {
        self.globals.push_str(decl);
    }

    fn main_line(&mut self, line: &str) {
        self.main_body.push_str("  ");
        self.main_body.push_str(line);
        self.main_body.push('\n');
    }

    /// Emits a procedure, padding its body with noise stanzas toward the
    /// program's average procedure size (with jitter). `exact_lines`
    /// overrides the target for the skewed big routine.
    fn emit_proc(&mut self, header: String, body: String, rng: &mut StdRng, pad: bool) {
        self.emit_proc_sized(header, body, rng, pad, None);
    }

    fn emit_proc_sized(
        &mut self,
        header: String,
        body: String,
        rng: &mut StdRng,
        pad: bool,
        exact_lines: Option<usize>,
    ) {
        let mut text = header;
        text.push('\n');
        let body_lines = body.matches('\n').count();
        let target = exact_lines
            .unwrap_or_else(|| {
                let jitter = self.avg / 3 + 1;
                self.avg + rng.gen_range(0..jitter * 2) - jitter
            })
            .max(body_lines + 2);
        let mut stanzas = 0usize;
        if pad {
            // header + decls(2) + body + stanzas*13 + end ≈ target
            let room = target.saturating_sub(body_lines + 4);
            stanzas = room / 13;
        }
        if stanzas > 0 {
            text.push_str("  integer nza(16)\n  real nzr\n");
        }
        text.push_str(&body);
        for _ in 0..stanzas {
            noise_stanza(&mut text, rng);
        }
        text.push_str("end\n");
        self.push_proc(&text);
    }
}

/// Number of procedures the motifs require (including `main`, `inert`,
/// `mix`, and the skewed big routine).
fn motif_proc_count(spec: &Spec) -> usize {
    let ch = |t: usize| chunks(t, spec.uses_per_proc).len();
    let depth = spec.chain_depth.max(2);
    2 + 1 // inert + mix + main
        + ch(spec.lit)
        + ch(spec.loc_safe)
        + ch(spec.loc_mod)
        + 2 * ch(spec.comp_safe)
        + 2 * ch(spec.comp_mod)
        + (ch(spec.chain_safe) + ch(spec.chain_mod)) * depth
        + if spec.init_uses > 0 { 1 + ch(spec.init_uses) } else { 0 }
        + if spec.dead_guard > 0 { 2 } else { 0 }
        + usize::from(spec.skewed)
}

/// Splits `total` uses into chunks of at most `cap`.
fn chunks(total: usize, cap: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut left = total;
    while left > 0 {
        let take = left.min(cap);
        out.push(take);
        left -= take;
    }
    out
}

/// Emits `uses` countable uses of scalar `name` into a body.
fn use_lines(body: &mut String, name: &str, uses: usize) {
    for i in 0..uses {
        let _ = writeln!(body, "  print({name} + {i})");
    }
}

/// One ~13-line noise stanza over the global `gnz` seed.
fn noise_stanza(body: &mut String, rng: &mut StdRng) {
    let m1 = rng.gen_range(2..9);
    let m2 = rng.gen_range(1..5);
    let _ = writeln!(body, "  nzs = mix(gnz, {m1})");
    let _ = writeln!(body, "  do nzi = 1, 16");
    let _ = writeln!(body, "    nza(nzi) = gnz * nzi + {m2}");
    let _ = writeln!(body, "  end");
    let _ = writeln!(body, "  do nzi = 1, 16");
    let _ = writeln!(body, "    nzs = nzs + nza(nzi)");
    let _ = writeln!(body, "  end");
    let _ = writeln!(body, "  if nzs % 2 == 0 then");
    let _ = writeln!(body, "    nzr = nzs / {m1}");
    let _ = writeln!(body, "  else");
    let _ = writeln!(body, "    nzr = nzs * 1.5");
    let _ = writeln!(body, "  end");
    let _ = writeln!(body, "  print(nzs % 1009)");
}

fn emit_literal_leaves(g: &mut Gen, spec: &Spec, rng: &mut StdRng) {
    for (k, uses) in chunks(spec.lit, spec.uses_per_proc).into_iter().enumerate() {
        let mut body = String::new();
        use_lines(&mut body, "p", uses);
        g.emit_proc(format!("proc lit{k}(p)"), body, rng, true);
        g.main_line(&format!("call lit{k}({})", 7 + k));
    }
}

fn emit_loc_safe(g: &mut Gen, spec: &Spec, rng: &mut StdRng) {
    for (k, uses) in chunks(spec.loc_safe, spec.uses_per_proc)
        .into_iter()
        .enumerate()
    {
        let mut body = format!("  x = {}\n", 9 + k);
        use_lines(&mut body, "x", uses);
        g.emit_proc(format!("proc lsf{k}()"), body, rng, true);
        g.main_line(&format!("call lsf{k}()"));
    }
}

fn emit_loc_mod(g: &mut Gen, spec: &Spec, rng: &mut StdRng) {
    for (k, uses) in chunks(spec.loc_mod, spec.uses_per_proc)
        .into_iter()
        .enumerate()
    {
        g.push_global(&format!("global glm{k}\n"));
        let mut body = format!("  glm{k} = {}\n  call inert()\n", 5 + k);
        use_lines(&mut body, &format!("glm{k}"), uses);
        g.emit_proc(format!("proc lmd{k}()"), body, rng, true);
        g.main_line(&format!("call lmd{k}()"));
    }
}

fn emit_computed(g: &mut Gen, spec: &Spec, rng: &mut StdRng, mod_variant: bool) {
    let (total, tag) = if mod_variant {
        (spec.comp_mod, "cmm")
    } else {
        (spec.comp_safe, "cms")
    };
    for (k, uses) in chunks(total, spec.uses_per_proc).into_iter().enumerate() {
        let mut leaf = String::new();
        use_lines(&mut leaf, "p", uses);
        g.emit_proc(format!("proc {tag}leaf{k}(p)"), leaf, rng, true);

        let mut src = String::new();
        if mod_variant {
            g.push_global(&format!("global gcm{k}\n"));
            let _ = writeln!(src, "  gcm{k} = {} * 3 + 1", k + 2);
            src.push_str("  call inert()\n");
            let _ = writeln!(src, "  call {tag}leaf{k}(gcm{k})");
        } else {
            let _ = writeln!(src, "  kv = {} * 3 + 1", k + 2);
            let _ = writeln!(src, "  call {tag}leaf{k}(kv)");
        }
        g.emit_proc(format!("proc {tag}src{k}()"), src, rng, true);
        g.main_line(&format!("call {tag}src{k}()"));
    }
}

fn emit_chains(g: &mut Gen, spec: &Spec, rng: &mut StdRng, mod_variant: bool) {
    let (total, tag) = if mod_variant {
        (spec.chain_mod, "chm")
    } else {
        (spec.chain_safe, "chs")
    };
    let depth = spec.chain_depth.max(2);
    for (k, uses) in chunks(total, spec.uses_per_proc).into_iter().enumerate() {
        // Link 1 (optionally routing through a global across a call) …
        let mut first = String::new();
        if mod_variant {
            g.push_global(&format!("global gch{k}\n"));
            let _ = writeln!(first, "  gch{k} = v");
            first.push_str("  call inert()\n");
            let _ = writeln!(first, "  call {tag}{k}x2(gch{k})");
        } else {
            let _ = writeln!(first, "  call {tag}{k}x2(v)");
        }
        g.emit_proc(format!("proc {tag}{k}x1(v)"), first, rng, true);
        // … intermediate links …
        for d in 2..depth {
            let body = format!("  call {tag}{k}x{}(v)\n", d + 1);
            g.emit_proc(format!("proc {tag}{k}x{d}(v)"), body, rng, true);
        }
        // … and the consuming leaf.
        let mut leaf = String::new();
        use_lines(&mut leaf, "v", uses);
        g.emit_proc(format!("proc {tag}{k}x{depth}(v)"), leaf, rng, true);
        g.main_line(&format!("call {tag}{k}x1({})", 3 + k));
    }
}

fn emit_init_users(g: &mut Gen, spec: &Spec, rng: &mut StdRng) {
    if spec.init_uses == 0 {
        return;
    }
    // One initialization routine assigning a handful of globals, and user
    // procedures spreading the uses over them — the `ocean` pattern.
    let user_chunks = chunks(spec.init_uses, spec.uses_per_proc);
    let nglobals = user_chunks.len().clamp(1, 6);
    let mut init = String::new();
    for j in 0..nglobals {
        g.push_global(&format!("global gio{j}\n"));
        let _ = writeln!(init, "  gio{j} = {}", 16 * (j + 1));
    }
    g.emit_proc("proc init0()".into(), init, rng, true);
    g.main_line("call init0()");

    for (k, uses) in user_chunks.into_iter().enumerate() {
        let j = if nglobals == 1 {
            0
        } else {
            rng.gen_range(0..nglobals)
        };
        let mut body = String::new();
        use_lines(&mut body, &format!("gio{j}"), uses);
        g.emit_proc(format!("proc iou{k}()"), body, rng, true);
        g.main_line(&format!("call iou{k}()"));
    }
}

fn emit_dead_guard(g: &mut Gen, spec: &Spec, rng: &mut StdRng) {
    if spec.dead_guard == 0 {
        return;
    }
    let mut leaf = String::new();
    use_lines(&mut leaf, "p", spec.dead_guard);
    g.emit_proc("proc dgleaf(p)".into(), leaf, rng, true);
    let body =
        "  if flag then\n    read(tv)\n    y = tv\n  else\n    y = 11\n  end\n  call dgleaf(y)\n";
    g.emit_proc("proc dguard(flag)".into(), body.into(), rng, true);
    g.main_line("call dguard(0)");
}

fn emit_noise(g: &mut Gen, spec: &Spec, rng: &mut StdRng) {
    let count_lines = |g: &Gen| {
        g.globals.matches('\n').count()
            + g.procs.matches('\n').count()
            + g.main_body.matches('\n').count()
            + 2 // `main` + `end`
    };
    // +1 accounts for `main` itself in the procedure count.
    let mut remaining_procs = spec.target_procs.saturating_sub(g.proc_count + 1);

    // The skewed programs put a large share of the remaining lines into
    // one big routine.
    if spec.skewed {
        let big = spec.target_lines * 2 / 5;
        g.emit_proc_sized("proc big0()".into(), String::new(), rng, true, Some(big));
        g.main_line("call big0()");
        remaining_procs = remaining_procs.saturating_sub(1);
    }

    for k in 0..remaining_procs {
        let remaining_lines = spec.target_lines.saturating_sub(count_lines(g));
        let procs_left = remaining_procs - k;
        let budget = (remaining_lines / procs_left.max(1)).clamp(6, g.avg * 2);
        g.emit_proc_sized(
            format!("proc noise{k}()"),
            String::new(),
            rng,
            true,
            Some(budget),
        );
        g.main_line(&format!("call noise{k}()"));
    }

    // Top up with extra noise procedures if we are still far short on
    // lines (at the cost of overshooting the procedure count).
    let mut extra = 0usize;
    while count_lines(g) + g.avg <= spec.target_lines && extra < 4096 {
        g.emit_proc_sized(
            format!("proc xnoise{extra}()"),
            String::new(),
            rng,
            true,
            Some(g.avg),
        );
        g.main_line(&format!("call xnoise{extra}()"));
        extra += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::all_specs;
    use ipcp_lang::interp::InterpConfig;

    #[test]
    fn all_programs_compile_and_validate() {
        for program in generate_all() {
            let ir = ipcp_ir::compile_to_ir(&program.source).unwrap_or_else(|e| {
                panic!(
                    "{} does not compile:\n{}",
                    program.name,
                    e.render(&program.source)
                )
            });
            ipcp_ir::validate::validate(&ir)
                .unwrap_or_else(|e| panic!("{} IR invalid: {e:?}", program.name));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_all();
        let b = generate_all();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.source, y.source, "{}", x.name);
        }
    }

    #[test]
    fn programs_run_to_completion() {
        for program in generate_all() {
            let ir = ipcp_ir::compile_to_ir(&program.source).expect("compiles");
            let config = InterpConfig {
                input: program.input(),
                max_steps: 200_000_000,
                ..InterpConfig::default()
            };
            let out = ipcp_ir::eval::run(&ir, &config)
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", program.name));
            assert!(
                !out.output.is_empty(),
                "{} produced no output",
                program.name
            );
        }
    }

    #[test]
    fn sizes_roughly_match_table_1() {
        for spec in all_specs() {
            let program = generate(&spec);
            let lines = program
                .source
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count();
            let tolerance = spec.target_lines / 4 + 80;
            assert!(
                lines.abs_diff(spec.target_lines) <= tolerance,
                "{}: {lines} lines vs target {}",
                spec.name,
                spec.target_lines
            );
        }
    }

    #[test]
    fn input_vector_is_long_enough() {
        for program in generate_all() {
            assert_eq!(program.input().len(), program.reads_needed);
        }
    }

    #[test]
    fn scale_program_compiles_validates_and_hits_the_proc_target() {
        let spec = ScaleSpec::with_procs(1000, 42);
        let program = generate_scale(&spec);
        let ir = ipcp_ir::compile_to_ir(&program.source).unwrap_or_else(|e| {
            panic!(
                "scale program does not compile:\n{}",
                e.render(&program.source)
            )
        });
        ipcp_ir::validate::validate(&ir).expect("scale IR valid");
        // main + emitted procedures land within a hub-granule of target.
        assert!(
            ir.procs.len().abs_diff(spec.procs) <= spec.fanout + 1,
            "{} procs vs target {}",
            ir.procs.len(),
            spec.procs
        );
        // Structural stressors are present: a deep condensation (the SCC
        // towers) and recursive pairs.
        let cg = ipcp_analysis::CallGraph::new(&ir);
        assert!(cg.sccs().iter().any(|s| s.len() == 2), "paired SCCs");
        let waves = ipcp_analysis::scc_waves(&cg);
        assert!(
            waves.len() >= spec.tower_height / 2,
            "condensation depth {} vs tower height {}",
            waves.len(),
            spec.tower_height
        );
    }

    #[test]
    fn scale_generation_is_deterministic_and_seed_sensitive() {
        let spec = ScaleSpec::with_procs(300, 7);
        assert_eq!(generate_scale(&spec).source, generate_scale(&spec).source);
        let other = ScaleSpec { seed: 8, ..spec };
        assert_ne!(generate_scale(&spec).source, generate_scale(&other).source);
    }

    #[test]
    fn scale_program_terminates_when_run() {
        let spec = ScaleSpec::with_procs(64, 3);
        let program = generate_scale(&spec);
        let ir = ipcp_ir::compile_to_ir(&program.source).expect("compiles");
        let config = InterpConfig {
            input: program.input(),
            max_steps: 50_000_000,
            ..InterpConfig::default()
        };
        let out = ipcp_ir::eval::run(&ir, &config).expect("runs");
        assert!(!out.output.is_empty());
    }
}
