//! A dependency-free scoped thread pool for the parallel analysis
//! engine.
//!
//! The workspace is offline (no rayon), so this module provides the
//! minimal primitive the analyses need: [`par_map`], a deterministic
//! fork/join map built on [`std::thread::scope`] with chunked
//! self-scheduling — workers claim contiguous index ranges from a shared
//! atomic cursor, so load balances like a work-stealing deque without
//! the deque. Determinism comes from the *merge*, not the schedule:
//! every worker tags results with their item index and the caller
//! receives them in input order, bit-identical at any thread count.
//!
//! [`Parallelism`] is the knob plumbed from the CLI/config down to the
//! fan-outs; [`scc_waves`] levels a call graph's SCC condensation so
//! bottom-up passes (MOD/REF, return jump functions) can run every SCC
//! of a reverse-topological level concurrently.

use crate::callgraph::CallGraph;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Estimated work units (≈ one instruction visit each) that amortize one
/// thread spawn: a spawn costs tens of microseconds, an instruction
/// visit tens of nanoseconds.
pub const PAR_SPAWN_COST_UNITS: u64 = 2048;

/// Cost-based wave gate: the worker count a wave of `items` units of
/// estimated work (`est_units`, ≈ instruction visits) should fan out to.
///
/// Replaces the old static `PAR_WAVE_MIN = 4` width gate, which
/// parallelized four one-instruction stubs (pure spawn overhead) and ran
/// a three-SCC wave of 10k-line procedures inline. The decision is now
/// work-based: fan out only when every spawned worker can amortize its
/// own spawn cost ([`PAR_SPAWN_COST_UNITS`]), and never spawn more
/// workers than items. At 100k-procedure scale nearly every wave clears
/// the bar, making parallel wave scheduling the default; tiny programs
/// stay inline and fast. Results are identical either way — the gate
/// only picks the wall-clock strategy.
pub fn wave_jobs(jobs: usize, items: usize, est_units: u64) -> usize {
    let jobs = jobs.max(1).min(items.max(1));
    if jobs <= 1 {
        return 1;
    }
    let affordable = (est_units / PAR_SPAWN_COST_UNITS).min(jobs as u64) as usize;
    affordable.max(1)
}

/// Degree of parallelism for the analysis engine.
///
/// `jobs == 0` and `jobs == 1` both mean sequential execution; any
/// higher value caps the worker threads a fan-out may use. Results are
/// bit-identical at every setting — parallelism only changes wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    /// Requested worker threads (0 is treated as 1).
    pub jobs: usize,
}

impl Parallelism {
    /// Sequential execution.
    pub fn sequential() -> Self {
        Parallelism { jobs: 1 }
    }

    /// The effective worker count: 0 is treated as 1.
    pub fn effective(self) -> usize {
        self.jobs.max(1)
    }

    /// Whether fan-outs actually spawn workers.
    pub fn is_parallel(self) -> bool {
        self.effective() > 1
    }

    /// The machine's available parallelism (1 when undetectable).
    pub fn available() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The `IPCP_JOBS` environment override, when set and parseable.
    pub fn from_env() -> Option<usize> {
        std::env::var("IPCP_JOBS").ok()?.trim().parse().ok()
    }

    /// The library default: `IPCP_JOBS` when set, else sequential.
    pub fn default_jobs() -> usize {
        Self::from_env().unwrap_or(1)
    }

    /// The CLI default: `IPCP_JOBS` when set, else every available core.
    pub fn auto() -> Self {
        Parallelism {
            jobs: Self::from_env().unwrap_or_else(Self::available),
        }
    }
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads and
/// returns the results in input order.
///
/// Workers claim chunked index ranges from a shared atomic cursor and
/// tag each result with its item index; the merge re-assembles them in
/// order, so the output is identical to the sequential map regardless
/// of scheduling. With `jobs <= 1` (or fewer than two items) no threads
/// are spawned. A panicking worker propagates its panic to the caller.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Chunks several times smaller than a fair share keep late stragglers
    // balanced without hammering the cursor.
    let chunk = (items.len() / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            local.push((i, f(i, item)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Deterministic ordered merge: place by item index.
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in collected.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("par_map computed every index"))
        .collect()
}

/// [`par_map`] with one observability span per item.
///
/// When `sink` is enabled every item's execution records a span named
/// `name` (category `par`) from the worker thread that ran it, so
/// Chrome traces show the actual fan-out schedule; when disabled this
/// is exactly [`par_map`] — same closure, same merge, same results.
pub fn par_map_obs<T, R, F>(
    jobs: usize,
    items: &[T],
    sink: &dyn ipcp_obs::ObsSink,
    name: &str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if !sink.enabled() {
        return par_map(jobs, items, f);
    }
    par_map(jobs, items, |i, item| {
        let start = sink.now();
        let result = f(i, item);
        sink.span(name, "par", start, sink.now().saturating_sub(start));
        result
    })
}

/// Levels the call graph's SCC condensation into reverse-topological
/// waves: wave 0 holds the leaf SCCs, and every SCC's callees live in
/// strictly lower waves. All SCCs of one wave are therefore mutually
/// call-independent and a bottom-up pass may process them concurrently;
/// running the waves in order reads exactly the data the sequential
/// bottom-up SCC iteration would.
///
/// Returns SCC indices (into [`CallGraph::sccs`]); within a wave they
/// keep the bottom-up order, so ordered merges stay deterministic.
pub fn scc_waves(cg: &CallGraph) -> Vec<Vec<usize>> {
    let sccs = cg.sccs();
    let mut level = vec![0usize; sccs.len()];
    let mut max_level = 0;
    // `sccs()` is bottom-up (callees first), so callee levels are final
    // by the time their callers read them.
    for (i, scc) in sccs.iter().enumerate() {
        let mut l = 0;
        for &pid in scc {
            for site in cg.sites(pid) {
                let callee_scc = cg.scc_of(site.callee);
                if callee_scc != i {
                    l = l.max(level[callee_scc] + 1);
                }
            }
        }
        level[i] = l;
        max_level = max_level.max(l);
    }
    let mut waves = vec![Vec::new(); max_level + 1];
    for (i, &l) in level.iter().enumerate() {
        waves[l].push(i);
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::compile_to_ir;

    #[test]
    fn effective_treats_zero_as_one() {
        assert_eq!(Parallelism { jobs: 0 }.effective(), 1);
        assert_eq!(Parallelism { jobs: 1 }.effective(), 1);
        assert_eq!(Parallelism { jobs: 7 }.effective(), 7);
        assert!(!Parallelism { jobs: 0 }.is_parallel());
        assert!(Parallelism { jobs: 2 }.is_parallel());
        assert_eq!(Parallelism::sequential().effective(), 1);
        assert!(Parallelism::available() >= 1);
        assert!(Parallelism::auto().effective() >= 1);
    }

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let want: Vec<usize> = items.iter().map(|&x| x * x + 1).collect();
        for jobs in [0, 1, 2, 3, 8, 200] {
            let got = par_map(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * x + 1
            });
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_jobs_exceeding_items_is_fine() {
        let items = [1u64, 2, 3];
        assert_eq!(par_map(64, &items, |_, &x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn scc_waves_respect_call_levels() {
        let src = "\
proc leaf1()\nprint(1)\nend\n\
proc leaf2()\nprint(2)\nend\n\
proc mid(x)\ncall leaf1()\ncall leaf2()\nend\n\
main\ncall mid(0)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let cg = CallGraph::new(&program);
        let waves = scc_waves(&cg);
        // Every SCC appears exactly once…
        let total: usize = waves.iter().map(Vec::len).sum();
        assert_eq!(total, cg.sccs().len());
        // …and every callee's SCC sits in a strictly lower wave.
        let wave_of = |scc: usize| waves.iter().position(|w| w.contains(&scc)).unwrap();
        for (i, scc) in cg.sccs().iter().enumerate() {
            for &pid in scc {
                for site in cg.sites(pid) {
                    let callee_scc = cg.scc_of(site.callee);
                    if callee_scc != i {
                        assert!(wave_of(callee_scc) < wave_of(i));
                    }
                }
            }
        }
    }

    #[test]
    fn recursive_sccs_stay_single_wave_entries() {
        let src = "\
proc ping(n)\nif n > 0 then\ncall pong(n - 1)\nend\nend\n\
proc pong(n)\nif n > 0 then\ncall ping(n - 1)\nend\nend\n\
main\ncall ping(4)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let cg = CallGraph::new(&program);
        let waves = scc_waves(&cg);
        let total: usize = waves.iter().map(Vec::len).sum();
        assert_eq!(total, cg.sccs().len());
        // The mutual-recursion SCC is one entry, not split across waves.
        assert!(cg.sccs().iter().any(|scc| scc.len() == 2));
    }
}
