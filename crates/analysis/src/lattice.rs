//! The constant-propagation lattice of the paper's Figure 1.
//!
//! Three levels: ⊤ (as-yet-unknown, the optimistic initial value), a
//! single integer constant, and ⊥ (known non-constant). The lattice is
//! infinite but of bounded depth: any value can be lowered at most twice
//! (⊤ → c → ⊥), which bounds every fixpoint iteration built on it.
//!
//! This module is also the single source of truth for the operator
//! transfer functions over the lattice ([`lattice_binop`] /
//! [`lattice_unop`]): SCCP, symbolic-expression evaluation, and the
//! dataflow framework all fold constants through these two functions, so
//! the interpreter-matching semantics (wrapping arithmetic, trapping
//! division) live in exactly one place.

use ipcp_lang::ast::{BinOp, UnOp};
use ipcp_lang::interp::eval_binop_int;
use std::fmt;

/// A value in the constant-propagation lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatticeVal {
    /// ⊤ — no evidence yet; optimistic initial assumption.
    Top,
    /// A known integer constant.
    Const(i64),
    /// ⊥ — proven (or assumed) non-constant.
    Bottom,
}

impl LatticeVal {
    /// The meet operation (Figure 1):
    ///
    /// ```text
    /// ⊤ ∧ x = x        ci ∧ cj = ci  if ci = cj
    /// ⊥ ∧ x = ⊥        ci ∧ cj = ⊥   if ci ≠ cj
    /// ```
    #[must_use]
    pub fn meet(self, other: LatticeVal) -> LatticeVal {
        use LatticeVal::*;
        match (self, other) {
            (Top, x) | (x, Top) => x,
            (Bottom, _) | (_, Bottom) => Bottom,
            (Const(a), Const(b)) => {
                if a == b {
                    Const(a)
                } else {
                    Bottom
                }
            }
        }
    }

    /// The constant, if this is one.
    pub fn as_const(self) -> Option<i64> {
        match self {
            LatticeVal::Const(c) => Some(c),
            _ => None,
        }
    }

    /// True for ⊤.
    pub fn is_top(self) -> bool {
        self == LatticeVal::Top
    }

    /// True for ⊥.
    pub fn is_bottom(self) -> bool {
        self == LatticeVal::Bottom
    }

    /// Lattice height of the value: 0 for ⊤, 1 for constants, 2 for ⊥.
    /// Meets never decrease height — the termination argument for every
    /// solver in this repository.
    pub fn height(self) -> u8 {
        match self {
            LatticeVal::Top => 0,
            LatticeVal::Const(_) => 1,
            LatticeVal::Bottom => 2,
        }
    }
}

/// Lattice transfer function of one binary operator, including the
/// absorbing shortcuts.
///
/// Constant × constant folds through the interpreter's own
/// [`eval_binop_int`] (so folded semantics can never drift from runtime
/// semantics); a compile-time trap (division by a zero constant) is not
/// a constant and degrades to ⊥. The absorbing shortcuts (`0 * x`,
/// `0 and x`, `c≠0 or x`) are sound under wrapping semantics even when
/// the other operand is unknown.
pub fn lattice_binop(op: BinOp, l: LatticeVal, r: LatticeVal) -> LatticeVal {
    use LatticeVal::*;
    if let (Const(a), Const(b)) = (l, r) {
        return match eval_binop_int(op, a, b) {
            Ok(v) => Const(v),
            Err(_) => Bottom, // a compile-time trap is not a constant
        };
    }
    // Absorbing shortcuts (sound under wrapping semantics).
    match op {
        BinOp::Mul | BinOp::And if l == Const(0) || r == Const(0) => return Const(0),
        BinOp::Or if matches!(l, Const(c) if c != 0) || matches!(r, Const(c) if c != 0) => {
            return Const(1);
        }
        _ => {}
    }
    if l == Bottom || r == Bottom {
        Bottom
    } else {
        Top
    }
}

/// Lattice transfer function of one unary operator: ⊤ and ⊥ pass
/// through, constants fold with the interpreter's wrapping semantics.
pub fn lattice_unop(op: UnOp, v: LatticeVal) -> LatticeVal {
    match (op, v) {
        (_, LatticeVal::Top) => LatticeVal::Top,
        (_, LatticeVal::Bottom) => LatticeVal::Bottom,
        (UnOp::Neg, LatticeVal::Const(c)) => LatticeVal::Const(c.wrapping_neg()),
        (UnOp::Not, LatticeVal::Const(c)) => LatticeVal::Const(i64::from(c == 0)),
    }
}

impl fmt::Display for LatticeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeVal::Top => f.write_str("⊤"),
            LatticeVal::Const(c) => write!(f, "{c}"),
            LatticeVal::Bottom => f.write_str("⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LatticeVal::*;

    const SAMPLES: [LatticeVal; 5] = [Top, Const(0), Const(1), Const(-7), Bottom];

    #[test]
    fn meet_matches_figure_1() {
        assert_eq!(Top.meet(Const(3)), Const(3));
        assert_eq!(Const(3).meet(Top), Const(3));
        assert_eq!(Const(3).meet(Const(3)), Const(3));
        assert_eq!(Const(3).meet(Const(4)), Bottom);
        assert_eq!(Bottom.meet(Top), Bottom);
        assert_eq!(Bottom.meet(Const(3)), Bottom);
        assert_eq!(Top.meet(Top), Top);
        assert_eq!(Bottom.meet(Bottom), Bottom);
    }

    #[test]
    fn meet_is_commutative_associative_idempotent() {
        for a in SAMPLES {
            assert_eq!(a.meet(a), a, "idempotent");
            for b in SAMPLES {
                assert_eq!(a.meet(b), b.meet(a), "commutative");
                for c in SAMPLES {
                    assert_eq!(a.meet(b).meet(c), a.meet(b.meet(c)), "associative");
                }
            }
        }
    }

    #[test]
    fn meet_never_raises() {
        for a in SAMPLES {
            for b in SAMPLES {
                let m = a.meet(b);
                // Meet is a lower bound: it sits at or below both inputs.
                assert!(m.height() >= a.height());
                assert!(m.height() >= b.height());
            }
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Const(5).as_const(), Some(5));
        assert_eq!(Top.as_const(), None);
        assert!(Top.is_top());
        assert!(Bottom.is_bottom());
        assert!(!Const(0).is_top());
        assert_eq!(Top.height(), 0);
        assert_eq!(Const(9).height(), 1);
        assert_eq!(Bottom.height(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(Top.to_string(), "⊤");
        assert_eq!(Bottom.to_string(), "⊥");
        assert_eq!(Const(-3).to_string(), "-3");
    }

    const ALL_BINOPS: [BinOp; 11] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::And,
        BinOp::Or,
    ];

    const CONSTS: [i64; 7] = [i64::MIN, -7, -1, 0, 1, 2, i64::MAX];

    #[test]
    fn binop_transfer_agrees_with_interpreter() {
        for op in ALL_BINOPS {
            for a in CONSTS {
                for b in CONSTS {
                    let want = match eval_binop_int(op, a, b) {
                        Ok(v) => Const(v),
                        Err(_) => Bottom,
                    };
                    assert_eq!(
                        lattice_binop(op, Const(a), Const(b)),
                        want,
                        "{op:?} {a} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn binop_transfer_agrees_with_symexpr_folding() {
        // The symbolic-expression folder and the lattice transfer are two
        // views of the same semantics: wherever SymExpr::binop folds two
        // constants, lattice_binop must produce the same constant, and a
        // fold failure (trap) must be ⊥ on the lattice side.
        use crate::symexpr::SymExpr;
        for op in ALL_BINOPS {
            for a in CONSTS {
                for b in CONSTS {
                    let sym = SymExpr::binop(op, &SymExpr::constant(a), &SymExpr::constant(b));
                    let lat = lattice_binop(op, Const(a), Const(b));
                    match sym.as_ref().and_then(SymExpr::as_const) {
                        Some(v) => assert_eq!(lat, Const(v), "{op:?} {a} {b}"),
                        None => assert_eq!(lat, Bottom, "{op:?} {a} {b}"),
                    }
                }
            }
        }
    }

    #[test]
    fn unop_transfer_agrees_with_symexpr_folding() {
        use crate::symexpr::SymExpr;
        for c in CONSTS {
            let e = SymExpr::constant(c);
            assert_eq!(
                lattice_unop(UnOp::Neg, Const(c)),
                Const(SymExpr::neg(&e).and_then(|r| r.as_const()).unwrap())
            );
            assert_eq!(
                lattice_unop(UnOp::Not, Const(c)),
                Const(SymExpr::not(&e).and_then(|r| r.as_const()).unwrap())
            );
        }
        for op in [UnOp::Neg, UnOp::Not] {
            assert_eq!(lattice_unop(op, Top), Top);
            assert_eq!(lattice_unop(op, Bottom), Bottom);
        }
    }

    #[test]
    fn absorbing_shortcuts_fire_on_unknowns() {
        for unknown in [Top, Bottom] {
            assert_eq!(lattice_binop(BinOp::Mul, Const(0), unknown), Const(0));
            assert_eq!(lattice_binop(BinOp::And, unknown, Const(0)), Const(0));
            assert_eq!(lattice_binop(BinOp::Or, Const(3), unknown), Const(1));
        }
        // No shortcut for division: `0 / n` may trap when n == 0.
        assert_eq!(lattice_binop(BinOp::Div, Const(0), Bottom), Bottom);
        assert_eq!(lattice_binop(BinOp::Div, Const(0), Top), Top);
    }
}
