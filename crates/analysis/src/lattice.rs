//! The constant-propagation lattice of the paper's Figure 1.
//!
//! Three levels: ⊤ (as-yet-unknown, the optimistic initial value), a
//! single integer constant, and ⊥ (known non-constant). The lattice is
//! infinite but of bounded depth: any value can be lowered at most twice
//! (⊤ → c → ⊥), which bounds every fixpoint iteration built on it.

use std::fmt;

/// A value in the constant-propagation lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatticeVal {
    /// ⊤ — no evidence yet; optimistic initial assumption.
    Top,
    /// A known integer constant.
    Const(i64),
    /// ⊥ — proven (or assumed) non-constant.
    Bottom,
}

impl LatticeVal {
    /// The meet operation (Figure 1):
    ///
    /// ```text
    /// ⊤ ∧ x = x        ci ∧ cj = ci  if ci = cj
    /// ⊥ ∧ x = ⊥        ci ∧ cj = ⊥   if ci ≠ cj
    /// ```
    #[must_use]
    pub fn meet(self, other: LatticeVal) -> LatticeVal {
        use LatticeVal::*;
        match (self, other) {
            (Top, x) | (x, Top) => x,
            (Bottom, _) | (_, Bottom) => Bottom,
            (Const(a), Const(b)) => {
                if a == b {
                    Const(a)
                } else {
                    Bottom
                }
            }
        }
    }

    /// The constant, if this is one.
    pub fn as_const(self) -> Option<i64> {
        match self {
            LatticeVal::Const(c) => Some(c),
            _ => None,
        }
    }

    /// True for ⊤.
    pub fn is_top(self) -> bool {
        self == LatticeVal::Top
    }

    /// True for ⊥.
    pub fn is_bottom(self) -> bool {
        self == LatticeVal::Bottom
    }

    /// Lattice height of the value: 0 for ⊤, 1 for constants, 2 for ⊥.
    /// Meets never decrease height — the termination argument for every
    /// solver in this repository.
    pub fn height(self) -> u8 {
        match self {
            LatticeVal::Top => 0,
            LatticeVal::Const(_) => 1,
            LatticeVal::Bottom => 2,
        }
    }
}

impl fmt::Display for LatticeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeVal::Top => f.write_str("⊤"),
            LatticeVal::Const(c) => write!(f, "{c}"),
            LatticeVal::Bottom => f.write_str("⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LatticeVal::*;

    const SAMPLES: [LatticeVal; 5] = [Top, Const(0), Const(1), Const(-7), Bottom];

    #[test]
    fn meet_matches_figure_1() {
        assert_eq!(Top.meet(Const(3)), Const(3));
        assert_eq!(Const(3).meet(Top), Const(3));
        assert_eq!(Const(3).meet(Const(3)), Const(3));
        assert_eq!(Const(3).meet(Const(4)), Bottom);
        assert_eq!(Bottom.meet(Top), Bottom);
        assert_eq!(Bottom.meet(Const(3)), Bottom);
        assert_eq!(Top.meet(Top), Top);
        assert_eq!(Bottom.meet(Bottom), Bottom);
    }

    #[test]
    fn meet_is_commutative_associative_idempotent() {
        for a in SAMPLES {
            assert_eq!(a.meet(a), a, "idempotent");
            for b in SAMPLES {
                assert_eq!(a.meet(b), b.meet(a), "commutative");
                for c in SAMPLES {
                    assert_eq!(a.meet(b).meet(c), a.meet(b.meet(c)), "associative");
                }
            }
        }
    }

    #[test]
    fn meet_never_raises() {
        for a in SAMPLES {
            for b in SAMPLES {
                let m = a.meet(b);
                // Meet is a lower bound: it sits at or below both inputs.
                assert!(m.height() >= a.height());
                assert!(m.height() >= b.height());
            }
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Const(5).as_const(), Some(5));
        assert_eq!(Top.as_const(), None);
        assert!(Top.is_top());
        assert!(Bottom.is_bottom());
        assert!(!Const(0).is_top());
        assert_eq!(Top.height(), 0);
        assert_eq!(Const(9).height(), 1);
        assert_eq!(Bottom.height(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(Top.to_string(), "⊤");
        assert_eq!(Bottom.to_string(), "⊥");
        assert_eq!(Const(-3).to_string(), "-3");
    }
}
