//! [`Wire`] codec implementations for the analysis-side types that the
//! persistent artifact cache persists: [`Slot`], [`Phase`], and
//! [`RobustnessReport`]. (The trait lives in `ipcp_ir::codec`; these
//! impls live here because the types do.)

use crate::budget::{Phase, RobustnessReport};
use crate::modref::Slot;
use ipcp_ir::codec::{ByteReader, ByteWriter, Wire, WireError};
use ipcp_ir::GlobalId;
use std::collections::BTreeMap;

impl Wire for Slot {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Slot::Formal(i) => {
                w.u8(0);
                w.u32(*i);
            }
            Slot::Global(g) => {
                w.u8(1);
                g.encode(w);
            }
            Slot::Result => w.u8(2),
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Slot::Formal(r.u32()?)),
            1 => Ok(Slot::Global(GlobalId::decode(r)?)),
            2 => Ok(Slot::Result),
            tag => Err(WireError::BadTag { what: "Slot", tag }),
        }
    }
}

impl Wire for Phase {
    fn encode(&self, w: &mut ByteWriter) {
        w.u8(match self {
            Phase::SymEval => 0,
            Phase::Poly => 1,
            Phase::Sccp => 2,
            Phase::ModRef => 3,
            Phase::ReturnJf => 4,
            Phase::ForwardJf => 5,
            Phase::Solver => 6,
        });
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Phase::SymEval,
            1 => Phase::Poly,
            2 => Phase::Sccp,
            3 => Phase::ModRef,
            4 => Phase::ReturnJf,
            5 => Phase::ForwardJf,
            6 => Phase::Solver,
            tag => return Err(WireError::BadTag { what: "Phase", tag }),
        })
    }
}

impl Wire for RobustnessReport {
    fn encode(&self, w: &mut ByteWriter) {
        self.fuel_limit.encode(w);
        self.fuel_consumed.encode(w);
        self.exhausted.encode(w);
        self.degradations.encode(w);
        self.ladder_steps.encode(w);
        self.anomalies.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(RobustnessReport {
            fuel_limit: Option::<u64>::decode(r)?,
            fuel_consumed: u64::decode(r)?,
            exhausted: bool::decode(r)?,
            degradations: BTreeMap::<Phase, u64>::decode(r)?,
            ladder_steps: BTreeMap::<(String, String), u64>::decode(r)?,
            anomalies: BTreeMap::<String, u64>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn slot_and_phase_roundtrip() {
        let slots = vec![Slot::Formal(3), Slot::Global(GlobalId(7)), Slot::Result];
        let bytes = encode_to_vec(&slots);
        assert_eq!(decode_from_slice::<Vec<Slot>>(&bytes).unwrap(), slots);
        for phase in Phase::ALL {
            let bytes = encode_to_vec(&phase);
            assert_eq!(decode_from_slice::<Phase>(&bytes).unwrap(), phase);
        }
    }

    #[test]
    fn robustness_report_roundtrips() {
        let mut report = RobustnessReport {
            fuel_limit: Some(64),
            fuel_consumed: 64,
            exhausted: true,
            ..RobustnessReport::default()
        };
        report.degradations.insert(Phase::Sccp, 2);
        report
            .ladder_steps
            .insert(("polynomial".into(), "literal".into()), 1);
        report.anomalies.insert("dce: mismatch".into(), 3);
        let bytes = encode_to_vec(&report);
        assert_eq!(
            decode_from_slice::<RobustnessReport>(&bytes).unwrap(),
            report
        );
    }

    #[test]
    fn slot_map_roundtrips_in_btree_order() {
        let mut map = BTreeMap::new();
        map.insert(Slot::Result, 1i64);
        map.insert(Slot::Formal(0), -2);
        map.insert(Slot::Global(GlobalId(1)), 3);
        let bytes = encode_to_vec(&map);
        assert_eq!(
            decode_from_slice::<BTreeMap<Slot, i64>>(&bytes).unwrap(),
            map
        );
        // Stability across re-encode.
        let back: BTreeMap<Slot, i64> = decode_from_slice(&bytes).unwrap();
        assert_eq!(encode_to_vec(&back), bytes);
    }
}
