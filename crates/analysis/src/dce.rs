//! Dead code elimination: constant-branch folding, unreachable-code
//! removal, and dead-assignment removal.
//!
//! The paper's *complete propagation* experiment (Table 3, column 3)
//! alternates interprocedural constant propagation with dead code
//! elimination until no more code dies, resetting the `CONSTANTS` sets to
//! ⊤ between rounds. These transforms mutate the IR in place; the driver
//! in `ipcp-core` re-runs the whole analysis afterwards.

use crate::budget::Budget;
use crate::sccp::SccpResult;
use ipcp_ir::{Procedure, Terminator, TrapKind};
use ipcp_lang::ast::BinOp;
use ipcp_ssa::{build_ssa, Cfg, KillOracle, SsaInstr, SsaName, SsaProc};

/// Rewrites every executable `branch` whose condition SCCP proved constant
/// into a `jump`. Returns whether anything changed.
pub fn fold_constant_branches(proc: &mut Procedure, ssa: &SsaProc, sccp: &SccpResult) -> bool {
    let mut changed = false;
    for b in proc.block_ids().collect::<Vec<_>>() {
        if !ssa.cfg.is_reachable(b) || !sccp.executable[b.index()] {
            continue;
        }
        let Some(ssa_block) = ssa.block(b) else {
            continue;
        };
        let ipcp_ssa::SsaTerminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = ssa_block.term
        else {
            continue;
        };
        if let Some(c) = sccp.of_operand(cond).as_const() {
            let target = if c != 0 { then_bb } else { else_bb };
            proc.block_mut(b).term = Terminator::Jump(target);
            changed = true;
        }
    }
    changed
}

/// Empties CFG-unreachable blocks (turning them into `trap unreachable`
/// markers). Run after branch folding. Returns whether anything changed.
pub fn remove_unreachable_code(proc: &mut Procedure) -> bool {
    let cfg = Cfg::new(proc);
    let mut changed = false;
    for b in proc.block_ids().collect::<Vec<_>>() {
        if cfg.is_reachable(b) {
            continue;
        }
        let block = proc.block_mut(b);
        let already_cleared =
            block.instrs.is_empty() && block.term == Terminator::Trap(TrapKind::Unreachable);
        if !already_cleared {
            block.instrs.clear();
            block.term = Terminator::Trap(TrapKind::Unreachable);
            changed = true;
        }
    }
    changed
}

/// Removes pure instructions whose results are never used.
///
/// Conservative about effects: calls, stores, reads, prints, loads (which
/// bounds-check), and division/remainder (which can trap) are always kept.
/// Returns whether anything changed.
pub fn remove_dead_assignments(
    program: &ipcp_ir::Program,
    proc: &mut Procedure,
    kills: &dyn KillOracle,
) -> bool {
    remove_dead_assignments_budgeted(program, proc, kills, &Budget::unlimited())
}

/// [`remove_dead_assignments`] with anomaly reporting: any malformed-IR
/// shape encountered mid-sweep is recorded on `budget` and the sweep
/// degrades to a no-op for the affected procedure instead of panicking.
pub fn remove_dead_assignments_budgeted(
    program: &ipcp_ir::Program,
    proc: &mut Procedure,
    kills: &dyn KillOracle,
    budget: &Budget,
) -> bool {
    let ssa = build_ssa(program, proc, kills);
    for a in &ssa.anomalies {
        budget.record_anomaly(a);
    }

    // Mark needed names from effectful roots.
    let mut needed = vec![false; ssa.name_count()];
    let mut work: Vec<SsaName> = Vec::new();
    let require = |op: ipcp_ssa::SsaOperand, needed: &mut Vec<bool>, work: &mut Vec<SsaName>| {
        if let Some(n) = op.as_name() {
            if !needed[n.index()] {
                needed[n.index()] = true;
                work.push(n);
            }
        }
    };

    for (_, blk) in ssa.rpo_blocks() {
        for instr in &blk.instrs {
            if !is_removable(instr) {
                instr.for_each_use(|op| require(op, &mut needed, &mut work));
            }
            // The caller's globals flow into every callee that may read
            // them; root the call-site snapshots so their defining
            // assignments survive.
            if let SsaInstr::Call { globals_in, .. } = instr {
                for &(_, name) in globals_in {
                    require(ipcp_ssa::SsaOperand::Name(name), &mut needed, &mut work);
                }
            }
        }
        match &blk.term {
            ipcp_ssa::SsaTerminator::Branch { cond, .. } => {
                require(*cond, &mut needed, &mut work);
            }
            ipcp_ssa::SsaTerminator::Return { value, exit } => {
                if let Some(v) = value {
                    require(*v, &mut needed, &mut work);
                }
                // Formals (by reference) and globals escape to the caller:
                // their exit values are observable.
                for &(_, name) in exit {
                    require(ipcp_ssa::SsaOperand::Name(name), &mut needed, &mut work);
                }
            }
            _ => {}
        }
    }

    // Index defs: name -> (block, instr index) for instruction defs; phi
    // defs handled through the phi list.
    // If a def site cannot be resolved the liveness marking is incomplete;
    // deleting anything on incomplete marking would be unsound, so the
    // sweep degrades to a no-op for this procedure.
    while let Some(n) = work.pop() {
        match ssa.def(n).site {
            ipcp_ssa::DefSite::Entry => {}
            ipcp_ssa::DefSite::Phi { block } => {
                let Some(blk) = ssa.block(block) else {
                    budget.record_anomaly("dce: phi def site in unbuilt block");
                    return false;
                };
                let Some(phi) = blk.phis.iter().find(|p| p.dst == n) else {
                    budget.record_anomaly("dce: phi def missing from its block");
                    return false;
                };
                for &(_, arg) in &phi.args {
                    if !needed[arg.index()] {
                        needed[arg.index()] = true;
                        work.push(arg);
                    }
                }
            }
            ipcp_ssa::DefSite::Instr { block, index }
            | ipcp_ssa::DefSite::CallImplicit { block, index } => {
                let Some(blk) = ssa.block(block) else {
                    budget.record_anomaly("dce: instr def site in unbuilt block");
                    return false;
                };
                let Some(instr) = blk.instrs.get(index) else {
                    budget.record_anomaly("dce: instr def index out of range");
                    return false;
                };
                instr.for_each_use(|op| require(op, &mut needed, &mut work));
            }
        }
    }

    // Sweep: drop removable instructions whose def is not needed.
    let mut changed = false;
    for b in proc.block_ids().collect::<Vec<_>>() {
        let Some(ssa_block) = ssa.block(b) else {
            continue;
        };
        let keep: Vec<bool> = ssa_block
            .instrs
            .iter()
            .map(|si| {
                if !is_removable(si) {
                    return true;
                }
                match si.dst() {
                    Some(d) => needed[d.index()],
                    None => true,
                }
            })
            .collect();
        if keep.iter().all(|&k| k) {
            continue;
        }
        let block = proc.block_mut(b);
        if block.instrs.len() != keep.len() {
            // SSA and IR disagree about this block's shape; sweeping on a
            // misaligned mask could delete the wrong instruction.
            budget.record_anomaly("dce: ssa/ir instruction count mismatch");
            continue;
        }
        let mut idx = 0;
        block.instrs.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        changed = true;
    }
    changed
}

/// Whether an SSA instruction is pure enough to delete when unused.
fn is_removable(instr: &SsaInstr) -> bool {
    match instr {
        SsaInstr::Copy { .. } | SsaInstr::Unary { .. } | SsaInstr::IntToReal { .. } => true,
        SsaInstr::Binary { op, .. } => !matches!(op, BinOp::Div | BinOp::Rem),
        // Loads bounds-check, reads consume input, the rest have effects.
        SsaInstr::Load { .. }
        | SsaInstr::Store { .. }
        | SsaInstr::Call { .. }
        | SsaInstr::Read { .. }
        | SsaInstr::Print { .. } => false,
    }
}

/// Convenience: one full DCE round (fold, strip unreachable, sweep dead
/// assignments) over a single procedure. Returns whether anything changed.
pub fn dce_round(
    program: &ipcp_ir::Program,
    proc: &mut Procedure,
    ssa: &SsaProc,
    sccp: &SccpResult,
    kills: &dyn KillOracle,
) -> bool {
    dce_round_budgeted(program, proc, ssa, sccp, kills, &Budget::unlimited())
}

/// [`dce_round`] with anomaly reporting: malformed-IR shapes found by any
/// of the three transforms (or already recorded on `ssa` during its
/// construction) surface through the budget's [`RobustnessReport`]
/// instead of aborting the process.
///
/// [`RobustnessReport`]: crate::budget::RobustnessReport
pub fn dce_round_budgeted(
    program: &ipcp_ir::Program,
    proc: &mut Procedure,
    ssa: &SsaProc,
    sccp: &SccpResult,
    kills: &dyn KillOracle,
    budget: &Budget,
) -> bool {
    for a in &ssa.anomalies {
        budget.record_anomaly(a);
    }
    let mut changed = fold_constant_branches(proc, ssa, sccp);
    changed |= remove_unreachable_code(proc);
    changed |= remove_dead_assignments_budgeted(program, proc, kills, budget);
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sccp::{bottom_entry, sccp, PessimisticCalls, SccpConfig};
    use ipcp_ir::{compile_to_ir, Instr, Program};
    use ipcp_lang::interp::{InterpConfig, Value};
    use ipcp_ssa::WorstCaseKills;

    fn run_dce(src: &str) -> (Program, bool) {
        let mut program = compile_to_ir(src).expect("compiles");
        let mut changed = false;
        for pid in program.proc_ids().collect::<Vec<_>>() {
            let proc_copy = program.proc(pid).clone();
            let ssa = build_ssa(&program, &proc_copy, &WorstCaseKills);
            let config = SccpConfig {
                entry_env: &bottom_entry,
                calls: &PessimisticCalls,
            };
            let result = sccp(&proc_copy, &ssa, &config);
            let mut proc = proc_copy;
            changed |= dce_round(&program, &mut proc, &ssa, &result, &WorstCaseKills);
            *program.proc_mut(pid) = proc;
        }
        ipcp_ir::validate::validate(&program).expect("DCE output validates");
        (program, changed)
    }

    fn outputs(program: &Program, input: Vec<i64>) -> Vec<Value> {
        ipcp_ir::eval::run(
            program,
            &InterpConfig {
                input,
                ..InterpConfig::default()
            },
        )
        .expect("runs")
        .output
    }

    #[test]
    fn folds_constant_branch() {
        let src = "main\nx = 1\nif x == 1 then\nprint(10)\nelse\nprint(20)\nend\nend\n";
        let (program, changed) = run_dce(src);
        assert!(changed);
        let main = program.proc(program.main);
        // No branch remains.
        assert!(main
            .blocks
            .iter()
            .all(|b| !matches!(b.term, Terminator::Branch { .. })));
        assert_eq!(outputs(&program, vec![]), vec![Value::Int(10)]);
    }

    #[test]
    fn nonconstant_branch_survives() {
        let src = "main\nread(x)\nif x == 1 then\nprint(10)\nelse\nprint(20)\nend\nend\n";
        let (program, _) = run_dce(src);
        let main = program.proc(program.main);
        assert!(main
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Branch { .. })));
        assert_eq!(outputs(&program, vec![1]), vec![Value::Int(10)]);
        assert_eq!(outputs(&program, vec![5]), vec![Value::Int(20)]);
    }

    #[test]
    fn unreachable_blocks_cleared() {
        let src = "main\nx = 0\nif x then\ny = 1\nprint(y)\nelse\nprint(2)\nend\nend\n";
        let (program, changed) = run_dce(src);
        assert!(changed);
        let main = program.proc(program.main);
        assert!(main
            .blocks
            .iter()
            .any(|b| b.term == Terminator::Trap(TrapKind::Unreachable) && b.instrs.is_empty()));
        assert_eq!(outputs(&program, vec![]), vec![Value::Int(2)]);
    }

    #[test]
    fn dead_assignments_removed() {
        let src = "main\nx = 1 + 2\ny = x * 3\nprint(7)\nend\n";
        let (program, changed) = run_dce(src);
        assert!(changed);
        assert_eq!(
            program.proc(program.main).instr_count(),
            1,
            "only the print remains"
        );
        assert_eq!(outputs(&program, vec![]), vec![Value::Int(7)]);
    }

    #[test]
    fn used_assignments_survive() {
        let src = "main\nread(x)\ny = x * 3\nprint(y)\nend\n";
        let (program, _) = run_dce(src);
        assert_eq!(program.proc(program.main).instr_count(), 3);
    }

    #[test]
    fn effectful_instructions_never_removed() {
        // read consumes input; call may print; store writes memory;
        // division may trap. None may disappear even when unused.
        let src = "proc noisy()\nprint(99)\nend\n\
                   main\ninteger a(3)\nread(x)\ny = 10 / x\na(1) = 5\ncall noisy()\nprint(1)\nend\n";
        let (program, _) = run_dce(src);
        let main = program.proc(program.main);
        let kinds: Vec<&'static str> = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .map(|i| match i {
                Instr::Read { .. } => "read",
                Instr::Binary { .. } => "binary",
                Instr::Store { .. } => "store",
                Instr::Call { .. } => "call",
                Instr::Print { .. } => "print",
                _ => "other",
            })
            .collect();
        assert!(kinds.contains(&"read"), "{kinds:?}");
        assert!(kinds.contains(&"binary"), "{kinds:?}");
        assert!(kinds.contains(&"store"), "{kinds:?}");
        assert!(kinds.contains(&"call"), "{kinds:?}");
        assert_eq!(
            outputs(&program, vec![2]),
            vec![Value::Int(99), Value::Int(1)]
        );
    }

    #[test]
    fn loads_survive_for_bounds_checks() {
        let src = "main\ninteger a(3)\nx = a(1)\nprint(0)\nend\n";
        let (program, _) = run_dce(src);
        let main = program.proc(program.main);
        assert!(main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Load { .. })));
    }

    #[test]
    fn dce_preserves_semantics_on_loops() {
        let src = "main\nread(n)\ns = 0\nunused = 5\ndo i = 1, n\ns = s + i\nunused2 = s * 2\nend\nprint(s)\nend\n";
        let (program, changed) = run_dce(src);
        assert!(changed, "unused assignments must die");
        assert_eq!(outputs(&program, vec![4]), vec![Value::Int(10)]);
    }

    #[test]
    fn malformed_ir_degrades_with_anomaly_instead_of_panicking() {
        let src = "proc f(n)\nn = n + 1\nend\nmain\nx = 1\ncall f(x)\nprint(x)\nend\n";
        let mut program = compile_to_ir(src).expect("compiles");
        let main = program.main;
        // Corrupt the call: a by-ref actual that is a constant.
        for block in &mut program.proc_mut(main).blocks {
            for instr in &mut block.instrs {
                if let Instr::Call { args, .. } = instr {
                    args[0].value = ipcp_ir::Operand::Const(1);
                }
            }
        }
        let budget = crate::budget::Budget::unlimited();
        let proc_copy = program.proc(main).clone();
        let ssa = build_ssa(&program, &proc_copy, &WorstCaseKills);
        let config = SccpConfig {
            entry_env: &bottom_entry,
            calls: &PessimisticCalls,
        };
        let result = sccp(&proc_copy, &ssa, &config);
        let mut proc = proc_copy;
        dce_round_budgeted(&program, &mut proc, &ssa, &result, &WorstCaseKills, &budget);
        let report = budget.report();
        assert!(report.total_anomalies() >= 1, "{report}");
        assert!(
            report.anomalies.keys().any(|k| k.contains("by-ref")),
            "{report}"
        );
        assert!(!report.is_clean());
        // The call itself must survive the degraded sweep.
        assert!(proc
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Call { .. })));
    }

    #[test]
    fn dce_is_idempotent() {
        let src = "main\nx = 1\nif x then\nprint(1)\nelse\nprint(2)\nend\nunused = 3\nend\n";
        let (program, changed1) = run_dce(src);
        assert!(changed1);
        // Second round over the already-cleaned program changes nothing.
        let printed = ipcp_ir::print::program_to_string(&program);
        let mut program2 = program.clone();
        let mut changed2 = false;
        for pid in program2.proc_ids().collect::<Vec<_>>() {
            let proc_copy = program2.proc(pid).clone();
            let ssa = build_ssa(&program2, &proc_copy, &WorstCaseKills);
            let config = SccpConfig {
                entry_env: &bottom_entry,
                calls: &PessimisticCalls,
            };
            let result = sccp(&proc_copy, &ssa, &config);
            let mut proc = proc_copy;
            changed2 |= dce_round(&program2, &mut proc, &ssa, &result, &WorstCaseKills);
            *program2.proc_mut(pid) = proc;
        }
        assert!(!changed2, "{printed}");
    }
}
