//! Call graph construction and SCC condensation.
//!
//! Interprocedural constant propagation (and MOD/REF summary computation)
//! iterate over the call graph; return jump functions are generated in a
//! bottom-up walk over its SCC condensation (callees before callers), with
//! recursive cycles handled conservatively.

use ipcp_ir::{BlockId, Instr, ProcId, Program};

/// A call site inside a procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Block containing the call.
    pub block: BlockId,
    /// Instruction index within the block.
    pub index: usize,
    /// The invoked procedure.
    pub callee: ProcId,
}

/// The program call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Call sites of each procedure, in block/instruction order.
    sites: Vec<Vec<CallSite>>,
    /// Direct callers of each procedure (deduplicated).
    callers: Vec<Vec<ProcId>>,
    /// Strongly connected components in bottom-up order: every callee's
    /// SCC appears before (or equals) its caller's SCC.
    sccs: Vec<Vec<ProcId>>,
    /// SCC index of each procedure.
    scc_of: Vec<usize>,
    /// Whether the procedure is reachable from `main` via call edges.
    reachable: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    pub fn new(program: &Program) -> Self {
        let n = program.procs.len();
        let mut sites: Vec<Vec<CallSite>> = vec![Vec::new(); n];
        let mut callees: Vec<Vec<ProcId>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<ProcId>> = vec![Vec::new(); n];

        // Stamp arrays instead of `Vec::contains` scans: at 100k
        // procedures with wide fan-out the linear dedup is quadratic.
        // Procedures are visited in id order, so a callee (resp. caller)
        // edge can only be duplicated within one caller's visit — one
        // stamp slot per procedure, stamped with the current caller's
        // id + 1, dedups in O(1) while preserving first-occurrence order.
        let mut edge_stamp = vec![0u32; n];
        for pid in program.proc_ids() {
            let stamp = pid.0 + 1;
            let proc = program.proc(pid);
            for b in proc.block_ids() {
                for (i, instr) in proc.block(b).instrs.iter().enumerate() {
                    if let Instr::Call { callee, .. } = instr {
                        sites[pid.index()].push(CallSite {
                            block: b,
                            index: i,
                            callee: *callee,
                        });
                        if edge_stamp[callee.index()] != stamp {
                            edge_stamp[callee.index()] = stamp;
                            callees[pid.index()].push(*callee);
                            callers[callee.index()].push(pid);
                        }
                    }
                }
            }
        }

        let (sccs, scc_of) = tarjan(n, &callees);

        // Reachability from main.
        let mut reachable = vec![false; n];
        let mut stack = vec![program.main];
        reachable[program.main.index()] = true;
        while let Some(p) = stack.pop() {
            for &q in &callees[p.index()] {
                if !reachable[q.index()] {
                    reachable[q.index()] = true;
                    stack.push(q);
                }
            }
        }

        CallGraph {
            sites,
            callers,
            sccs,
            scc_of,
            reachable,
        }
    }

    /// Call sites of `p`, in program order.
    pub fn sites(&self, p: ProcId) -> &[CallSite] {
        &self.sites[p.index()]
    }

    /// Direct callers of `p`.
    pub fn callers(&self, p: ProcId) -> &[ProcId] {
        &self.callers[p.index()]
    }

    /// SCCs in bottom-up (callees-first) order.
    pub fn sccs(&self) -> &[Vec<ProcId>] {
        &self.sccs
    }

    /// Index of `p`'s SCC in [`CallGraph::sccs`].
    pub fn scc_of(&self, p: ProcId) -> usize {
        self.scc_of[p.index()]
    }

    /// Whether `p` belongs to a non-trivial SCC (recursion).
    pub fn is_recursive(&self, p: ProcId) -> bool {
        let scc = &self.sccs[self.scc_of[p.index()]];
        scc.len() > 1 || self.sites(p).iter().any(|s| s.callee == p)
    }

    /// Whether `p` is reachable from `main` through call edges.
    pub fn is_reachable(&self, p: ProcId) -> bool {
        self.reachable[p.index()]
    }

    /// Total number of call sites in the program.
    pub fn site_count(&self) -> usize {
        self.sites.iter().map(Vec::len).sum()
    }
}

/// Iterative Tarjan SCC; returns SCCs in reverse topological order of the
/// condensation (successors first) plus the component index of each node.
fn tarjan(n: usize, succs: &[Vec<ProcId>]) -> (Vec<Vec<ProcId>>, Vec<usize>) {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<ProcId>> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut counter = 0usize;

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        // Explicit DFS frame: (node, next successor position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = counter;
        lowlink[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut next)) = frames.last_mut() {
            if *next < succs[v].len() {
                let w = succs[v][*next].index();
                *next += 1;
                if index[w] == UNVISITED {
                    index[w] = counter;
                    lowlink[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack non-empty");
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        scc.push(ProcId::from_index(w));
                        if w == v {
                            break;
                        }
                    }
                    scc.reverse();
                    sccs.push(scc);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::compile_to_ir;

    fn graph(src: &str) -> (Program, CallGraph) {
        let program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        (program, cg)
    }

    #[test]
    fn empty_main() {
        let (program, cg) = graph("main\nend\n");
        assert!(cg.sites(program.main).is_empty());
        assert!(cg.is_reachable(program.main));
        assert!(!cg.is_recursive(program.main));
        assert_eq!(cg.site_count(), 0);
    }

    #[test]
    fn chain_bottom_up_order() {
        let src = "proc a()\ncall b()\nend\nproc b()\ncall c()\nend\nproc c()\nend\nmain\ncall a()\nend\n";
        let (program, cg) = graph(src);
        let a = program.proc_by_name("a").unwrap();
        let b = program.proc_by_name("b").unwrap();
        let c = program.proc_by_name("c").unwrap();
        let main = program.main;
        // Bottom-up: callees before callers.
        assert!(cg.scc_of(c) < cg.scc_of(b));
        assert!(cg.scc_of(b) < cg.scc_of(a));
        assert!(cg.scc_of(a) < cg.scc_of(main));
        assert_eq!(cg.callers(c), &[b]);
        assert_eq!(cg.sites(main).len(), 1);
        assert_eq!(cg.sites(main)[0].callee, a);
    }

    #[test]
    fn self_recursion_detected() {
        let src =
            "func f(n)\nif n <= 0 then\nreturn 0\nend\nreturn f(n - 1)\nend\nmain\nx = f(3)\nend\n";
        let (program, cg) = graph(src);
        let f = program.proc_by_name("f").unwrap();
        assert!(cg.is_recursive(f));
        assert!(!cg.is_recursive(program.main));
    }

    #[test]
    fn mutual_recursion_single_scc() {
        let src = "\
proc even(n, r)\nif n == 0 then\nr = 1\nelse\ncall odd(n - 1, r)\nend\nend\n\
proc odd(n, r)\nif n == 0 then\nr = 0\nelse\ncall even(n - 1, r)\nend\nend\n\
main\ncall even(4, x)\nend\n";
        let (program, cg) = graph(src);
        let even = program.proc_by_name("even").unwrap();
        let odd = program.proc_by_name("odd").unwrap();
        assert_eq!(cg.scc_of(even), cg.scc_of(odd));
        assert!(cg.is_recursive(even));
        assert!(cg.is_recursive(odd));
        // The recursive SCC precedes main's.
        assert!(cg.scc_of(even) < cg.scc_of(program.main));
    }

    #[test]
    fn unreachable_procedures_flagged() {
        let src = "proc dead()\nend\nproc live()\nend\nmain\ncall live()\nend\n";
        let (program, cg) = graph(src);
        assert!(!cg.is_reachable(program.proc_by_name("dead").unwrap()));
        assert!(cg.is_reachable(program.proc_by_name("live").unwrap()));
    }

    #[test]
    fn multiple_sites_recorded_in_order() {
        let src = "proc f(x)\nend\nmain\ncall f(1)\ncall f(2)\nif c then\ncall f(3)\nend\nend\n";
        let (program, cg) = graph(src);
        assert_eq!(cg.sites(program.main).len(), 3);
        assert_eq!(cg.site_count(), 3);
    }

    #[test]
    fn function_calls_in_expressions_are_sites() {
        let src = "func g(x)\nreturn x\nend\nmain\ny = g(1) + g(2)\nend\n";
        let (program, cg) = graph(src);
        assert_eq!(cg.sites(program.main).len(), 2);
    }
}
