//! Resource governance for the analysis pipeline.
//!
//! Every expensive phase of interprocedural constant propagation —
//! symbolic evaluation, polynomial construction, SCCP, the MOD/REF
//! fixpoint, return-jump-function composition, and the interprocedural
//! solvers — draws *fuel* from a shared [`Budget`]. When the budget is
//! exhausted the pipeline does not panic or loop: each phase degrades
//! to a sound, coarser answer (jump functions slide down the paper's
//! precision ladder `Polynomial → PassThrough → IntraproceduralConstant
//! → Literal → ⊥`; lattice values drop to ⊥), and every degradation is
//! recorded in a [`RobustnessReport`].
//!
//! The fuel supply is abstracted behind [`FuelSource`] so tests can
//! substitute a deterministic [`FaultInjector`] that trips exhaustion at
//! exactly the Nth checkpoint — the fault-injection harness behind the
//! no-panic/soundness property tests.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// The analysis phases that draw fuel, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Per-instruction/per-phi symbolic evaluation work.
    SymEval,
    /// Polynomial and symbolic-expression construction.
    Poly,
    /// Sparse conditional constant propagation iterations.
    Sccp,
    /// MOD/REF interprocedural fixpoint iterations.
    ModRef,
    /// Return-jump-function construction per procedure.
    ReturnJf,
    /// Forward jump-function construction per procedure.
    ForwardJf,
    /// Interprocedural solver worklist pops / edge evaluations.
    Solver,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 7] = [
        Phase::SymEval,
        Phase::Poly,
        Phase::Sccp,
        Phase::ModRef,
        Phase::ReturnJf,
        Phase::ForwardJf,
        Phase::Solver,
    ];

    /// Stable lowercase name, used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SymEval => "symeval",
            Phase::Poly => "poly",
            Phase::Sccp => "sccp",
            Phase::ModRef => "modref",
            Phase::ReturnJf => "retjf",
            Phase::ForwardJf => "forward-jf",
            Phase::Solver => "solver",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the driver does when the budget runs dry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExhaustionPolicy {
    /// Degrade jump functions and lattice values soundly and finish.
    #[default]
    Degrade,
    /// Report an error instead of a (coarser) result.
    Error,
}

impl fmt::Display for ExhaustionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExhaustionPolicy::Degrade => "degrade",
            ExhaustionPolicy::Error => "error",
        })
    }
}

/// A supply of fuel. Implementations decide when a consumption request
/// fails; once any request fails the owning [`Budget`] stays exhausted.
pub trait FuelSource {
    /// Attempts to consume `amount` units for `phase`. Returns `false`
    /// when the supply is (now) exhausted.
    fn try_consume(&self, phase: Phase, amount: u64) -> bool;

    /// Units still available, or `None` when unlimited / unknown.
    fn remaining(&self) -> Option<u64>;

    /// True when this source *provably* never fails a request — i.e. the
    /// supply is unlimited, not merely of unknown size. Memoization in
    /// the analysis session is only sound under an unmetered budget
    /// (cached artifacts replay their recorded fuel instead of re-earning
    /// it), so sources default to `false` and only the genuinely
    /// unlimited supply opts in.
    fn is_unmetered(&self) -> bool {
        false
    }
}

/// Unlimited fuel: every request succeeds.
struct UnlimitedFuel;

impl FuelSource for UnlimitedFuel {
    fn try_consume(&self, _phase: Phase, _amount: u64) -> bool {
        true
    }
    fn remaining(&self) -> Option<u64> {
        None
    }
    fn is_unmetered(&self) -> bool {
        true
    }
}

/// A finite tank of `limit` units.
struct FiniteFuel {
    limit: u64,
    used: RefCell<u64>,
}

impl FuelSource for FiniteFuel {
    fn try_consume(&self, _phase: Phase, amount: u64) -> bool {
        let mut used = self.used.borrow_mut();
        match used.checked_add(amount) {
            Some(next) if next <= self.limit => {
                *used = next;
                true
            }
            _ => false,
        }
    }
    fn remaining(&self) -> Option<u64> {
        Some(self.limit.saturating_sub(*self.used.borrow()))
    }
}

/// Deterministic fault injector: allows the first `n` checkpoints and
/// fails every one after, regardless of phase or cost. Driving an
/// analysis with `FaultInjector::new(n)` for increasing `n` sweeps the
/// exhaustion point across every checkpoint in the pipeline.
pub struct FaultInjector {
    allowed: u64,
    seen: RefCell<u64>,
}

impl FaultInjector {
    /// An injector that permits exactly `allowed` checkpoints.
    pub fn new(allowed: u64) -> Self {
        FaultInjector {
            allowed,
            seen: RefCell::new(0),
        }
    }
}

impl FuelSource for FaultInjector {
    fn try_consume(&self, _phase: Phase, _amount: u64) -> bool {
        let mut seen = self.seen.borrow_mut();
        *seen += 1;
        *seen <= self.allowed
    }
    fn remaining(&self) -> Option<u64> {
        // Unknown by design: the injector counts checkpoints, not units,
        // so phases must not plan ahead based on it.
        None
    }
}

/// The disk-fault kinds the persistent artifact cache must tolerate.
///
/// Each kind models a distinct real-world failure: a crash mid-write
/// (torn write), a filesystem that lost the file tail (truncation),
/// media bit rot, a full disk, a permission change, and a rename that
/// fails across the atomic-publish step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoFaultKind {
    /// Only a prefix of the intended bytes reaches the disk.
    TornWrite,
    /// The file is written whole, then loses its tail.
    Truncate,
    /// One bit of the written payload flips.
    BitFlip,
    /// The write fails with `ENOSPC` (disk full).
    Enospc,
    /// The write fails with `EACCES` (permission denied).
    Eacces,
    /// The atomic temp→final rename fails.
    RenameFail,
}

impl IoFaultKind {
    /// All fault kinds, for exhaustive campaigns.
    pub const ALL: [IoFaultKind; 6] = [
        IoFaultKind::TornWrite,
        IoFaultKind::Truncate,
        IoFaultKind::BitFlip,
        IoFaultKind::Enospc,
        IoFaultKind::Eacces,
        IoFaultKind::RenameFail,
    ];

    /// Stable lowercase name, used in reports and test output.
    pub fn name(self) -> &'static str {
        match self {
            IoFaultKind::TornWrite => "torn-write",
            IoFaultKind::Truncate => "truncate",
            IoFaultKind::BitFlip => "bit-flip",
            IoFaultKind::Enospc => "enospc",
            IoFaultKind::Eacces => "eacces",
            IoFaultKind::RenameFail => "rename-fail",
        }
    }

    /// The operation class this fault can strike.
    pub fn target_op(self) -> IoOp {
        match self {
            IoFaultKind::RenameFail => IoOp::Rename,
            _ => IoOp::Write,
        }
    }
}

impl fmt::Display for IoFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The I/O operation classes the cache performs (and the injector can
/// intercept).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoOp {
    /// Reading an entry file.
    Read,
    /// Writing a temp file.
    Write,
    /// The atomic temp→final rename.
    Rename,
    /// Removing an entry (eviction, clear, quarantine source).
    Remove,
}

/// Deterministic disk-fault injector, the I/O analogue of
/// [`FaultInjector`]: fires `kind` exactly once, at the `trigger`-th
/// eligible operation. Sweeping `trigger` across a cache session drives
/// the fault through every write and rename the cache performs.
///
/// Unlike the fuel-side injector this one is `Sync` (atomics, not
/// `RefCell`) because the disk cache is shared across analysis workers.
#[derive(Debug)]
pub struct IoFaultInjector {
    kind: IoFaultKind,
    trigger: u64,
    seen: std::sync::atomic::AtomicU64,
    injected: std::sync::atomic::AtomicU64,
}

impl IoFaultInjector {
    /// An injector that fires `kind` at the `trigger`-th eligible
    /// operation (1-based; a trigger of 0 never fires).
    pub fn new(kind: IoFaultKind, trigger: u64) -> Self {
        IoFaultInjector {
            kind,
            trigger,
            seen: std::sync::atomic::AtomicU64::new(0),
            injected: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The fault this injector delivers.
    pub fn kind(&self) -> IoFaultKind {
        self.kind
    }

    /// Called by the cache's I/O layer before each operation of class
    /// `op`; returns `true` exactly when the fault should strike now.
    pub fn should_fire(&self, op: IoOp) -> bool {
        use std::sync::atomic::Ordering;
        if op != self.kind.target_op() || self.trigger == 0 {
            return false;
        }
        let nth = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if nth == self.trigger {
            self.injected.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// How many faults have actually been delivered (0 or 1).
    pub fn injected(&self) -> u64 {
        self.injected.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// How many eligible operations have been observed so far.
    pub fn eligible_ops_seen(&self) -> u64 {
        self.seen.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Everything the budget learned while the analysis ran.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RobustnessReport {
    /// The configured fuel limit, if finite.
    pub fuel_limit: Option<u64>,
    /// Units successfully consumed across all phases.
    pub fuel_consumed: u64,
    /// Whether any checkpoint failed.
    pub exhausted: bool,
    /// How many times each phase degraded its result.
    pub degradations: BTreeMap<Phase, u64>,
    /// Precision-ladder steps taken by jump-function construction,
    /// keyed by `(from, to)` kind names.
    pub ladder_steps: BTreeMap<(String, String), u64>,
    /// Malformed-but-validated IR shapes the transforms recovered from
    /// instead of panicking (e.g. a DCE sweep skipped because SSA and IR
    /// disagreed), keyed by a stable description.
    pub anomalies: BTreeMap<String, u64>,
}

impl RobustnessReport {
    /// Total degradation events across all phases.
    pub fn total_degradations(&self) -> u64 {
        self.degradations.values().sum()
    }

    /// Total anomaly events across all descriptions.
    pub fn total_anomalies(&self) -> u64 {
        self.anomalies.values().sum()
    }

    /// True when the analysis ran to completion at full precision.
    pub fn is_clean(&self) -> bool {
        !self.exhausted
            && self.degradations.is_empty()
            && self.ladder_steps.is_empty()
            && self.anomalies.is_empty()
    }

    /// Renders the report as a JSON object (hand-rolled; the workspace
    /// carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        match self.fuel_limit {
            Some(n) => out.push_str(&format!("\"fuel_limit\":{n},")),
            None => out.push_str("\"fuel_limit\":null,"),
        }
        out.push_str(&format!("\"fuel_consumed\":{},", self.fuel_consumed));
        out.push_str(&format!("\"exhausted\":{},", self.exhausted));
        out.push_str("\"degradations\":{");
        let mut first = true;
        for (phase, count) in &self.degradations {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{count}", phase.name()));
        }
        out.push_str("},\"ladder_steps\":[");
        let mut first = true;
        for ((from, to), count) in &self.ladder_steps {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"from\":\"{from}\",\"to\":\"{to}\",\"count\":{count}}}"
            ));
        }
        out.push_str("],\"anomalies\":{");
        let mut first = true;
        for (what, count) in &self.anomalies {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{count}", json_escape(what)));
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for RobustnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fuel_limit {
            Some(n) => writeln!(f, "fuel: {} consumed of {n}", self.fuel_consumed)?,
            None => writeln!(f, "fuel: {} consumed (unlimited)", self.fuel_consumed)?,
        }
        writeln!(
            f,
            "exhausted: {}; degradations: {}",
            if self.exhausted { "yes" } else { "no" },
            self.total_degradations()
        )?;
        for (phase, count) in &self.degradations {
            writeln!(f, "  {phase}: {count}")?;
        }
        for ((from, to), count) in &self.ladder_steps {
            writeln!(f, "  ladder {from} -> {to}: {count}")?;
        }
        if !self.anomalies.is_empty() {
            writeln!(f, "anomalies: {}", self.total_anomalies())?;
            for (what, count) in &self.anomalies {
                writeln!(f, "  {what}: {count}")?;
            }
        }
        Ok(())
    }
}

/// Minimal JSON string escaping for anomaly keys (hand-rolled; the
/// workspace carries no serde).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct BudgetState {
    consumed: u64,
    exhausted: bool,
    degradations: BTreeMap<Phase, u64>,
    ladder_steps: BTreeMap<(String, String), u64>,
    anomalies: BTreeMap<String, u64>,
}

struct BudgetInner {
    source: Box<dyn FuelSource>,
    fuel_limit: Option<u64>,
    state: RefCell<BudgetState>,
}

/// Shared fuel handle threaded through the analysis phases. Cloning is
/// cheap and clones draw from the same tank.
///
/// Exhaustion is *sticky*: after the first failed [`checkpoint`]
/// (`Budget::checkpoint`) every later checkpoint fails too, so a phase
/// that observed exhaustion can rely on downstream phases observing it
/// as well.
#[derive(Clone)]
pub struct Budget {
    inner: Rc<BudgetInner>,
}

impl Budget {
    fn from_parts(source: Box<dyn FuelSource>, fuel_limit: Option<u64>) -> Self {
        Budget {
            inner: Rc::new(BudgetInner {
                source,
                fuel_limit,
                state: RefCell::new(BudgetState {
                    consumed: 0,
                    exhausted: false,
                    degradations: BTreeMap::new(),
                    ladder_steps: BTreeMap::new(),
                    anomalies: BTreeMap::new(),
                }),
            }),
        }
    }

    /// A budget that never exhausts.
    pub fn unlimited() -> Self {
        Budget::from_parts(Box::new(UnlimitedFuel), None)
    }

    /// A budget with a finite tank of `limit` units.
    pub fn with_fuel(limit: u64) -> Self {
        Budget::from_parts(
            Box::new(FiniteFuel {
                limit,
                used: RefCell::new(0),
            }),
            Some(limit),
        )
    }

    /// A budget drawing from a custom source (e.g. a [`FaultInjector`]).
    pub fn from_source<S: FuelSource + 'static>(source: S) -> Self {
        Budget::from_parts(Box::new(source), None)
    }

    /// Builds the budget implied by an optional fuel limit.
    pub fn for_limit(limit: Option<u64>) -> Self {
        match limit {
            Some(n) => Budget::with_fuel(n),
            None => Budget::unlimited(),
        }
    }

    /// Attempts to spend `amount` units on behalf of `phase`. Returns
    /// `false` — permanently, for all callers — once the supply fails.
    pub fn checkpoint(&self, phase: Phase, amount: u64) -> bool {
        let mut state = self.inner.state.borrow_mut();
        if state.exhausted {
            return false;
        }
        if self.inner.source.try_consume(phase, amount) {
            state.consumed += amount;
            true
        } else {
            state.exhausted = true;
            false
        }
    }

    /// True once any checkpoint has failed.
    pub fn is_exhausted(&self) -> bool {
        self.inner.state.borrow().exhausted
    }

    /// True when every checkpoint is guaranteed to succeed (see
    /// [`FuelSource::is_unmetered`]).
    pub fn is_unmetered(&self) -> bool {
        self.inner.source.is_unmetered() && !self.inner.state.borrow().exhausted
    }

    /// Units consumed so far — a cheap accessor for fuel accounting
    /// (avoids snapshotting the whole report).
    pub fn fuel_consumed(&self) -> u64 {
        self.inner.state.borrow().consumed
    }

    /// Units still available, or `None` when unlimited / unknown.
    /// Reports `Some(0)` once exhaustion has been observed.
    pub fn fuel_remaining(&self) -> Option<u64> {
        if self.inner.state.borrow().exhausted {
            return Some(0);
        }
        self.inner.source.remaining()
    }

    /// Records that `phase` produced a degraded (coarser but sound)
    /// result.
    pub fn record_degradation(&self, phase: Phase) {
        let mut state = self.inner.state.borrow_mut();
        *state.degradations.entry(phase).or_insert(0) += 1;
    }

    /// Records one precision-ladder step from jump-function kind `from`
    /// down to `to`.
    pub fn record_ladder_step(&self, from: &str, to: &str) {
        let mut state = self.inner.state.borrow_mut();
        *state
            .ladder_steps
            .entry((from.to_string(), to.to_string()))
            .or_insert(0) += 1;
    }

    /// Records a malformed-IR shape a transform recovered from instead of
    /// panicking (the transform degrades to a no-op for the affected
    /// region; the result stays sound, merely less optimized).
    pub fn record_anomaly(&self, what: &str) {
        let mut state = self.inner.state.borrow_mut();
        *state.anomalies.entry(what.to_string()).or_insert(0) += 1;
    }

    /// Snapshots the report accumulated so far.
    pub fn report(&self) -> RobustnessReport {
        let state = self.inner.state.borrow();
        RobustnessReport {
            fuel_limit: self.inner.fuel_limit,
            fuel_consumed: state.consumed,
            exhausted: state.exhausted,
            degradations: state.degradations.clone(),
            ladder_steps: state.ladder_steps.clone(),
            anomalies: state.anomalies.clone(),
        }
    }
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.inner.state.borrow();
        f.debug_struct("Budget")
            .field("fuel_limit", &self.inner.fuel_limit)
            .field("consumed", &state.consumed)
            .field("exhausted", &state.exhausted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.checkpoint(Phase::Solver, 1_000));
        }
        assert!(!b.is_exhausted());
        assert_eq!(b.fuel_remaining(), None);
        assert!(b.report().is_clean());
    }

    #[test]
    fn only_unlimited_budgets_are_unmetered() {
        assert!(Budget::unlimited().is_unmetered());
        assert!(Budget::for_limit(None).is_unmetered());
        assert!(!Budget::with_fuel(u64::MAX).is_unmetered());
        assert!(!Budget::for_limit(Some(5)).is_unmetered());
        assert!(!Budget::from_source(FaultInjector::new(1_000)).is_unmetered());
    }

    #[test]
    fn fuel_consumed_accessor_tracks_checkpoints() {
        let b = Budget::unlimited();
        assert_eq!(b.fuel_consumed(), 0);
        assert!(b.checkpoint(Phase::SymEval, 7));
        assert!(b.checkpoint(Phase::Solver, 3));
        assert_eq!(b.fuel_consumed(), 10);
        assert_eq!(b.report().fuel_consumed, 10);
    }

    #[test]
    fn finite_fuel_exhausts_and_sticks() {
        let b = Budget::with_fuel(5);
        assert!(b.checkpoint(Phase::SymEval, 3));
        assert!(b.checkpoint(Phase::SymEval, 2));
        assert_eq!(b.fuel_remaining(), Some(0));
        assert!(!b.checkpoint(Phase::SymEval, 1));
        assert!(b.is_exhausted());
        // Sticky: even a zero-cost checkpoint fails after exhaustion.
        assert!(!b.checkpoint(Phase::Solver, 0));
        let report = b.report();
        assert!(report.exhausted);
        assert_eq!(report.fuel_consumed, 5);
        assert_eq!(report.fuel_limit, Some(5));
    }

    #[test]
    fn zero_fuel_fails_first_costly_checkpoint() {
        let b = Budget::with_fuel(0);
        assert!(!b.checkpoint(Phase::Sccp, 1));
        assert!(b.is_exhausted());
    }

    #[test]
    fn clones_share_the_tank() {
        let a = Budget::with_fuel(2);
        let b = a.clone();
        assert!(a.checkpoint(Phase::Poly, 1));
        assert!(b.checkpoint(Phase::Poly, 1));
        assert!(!a.checkpoint(Phase::Poly, 1));
        assert!(b.is_exhausted());
    }

    #[test]
    fn fault_injector_trips_at_exactly_n() {
        let b = Budget::from_source(FaultInjector::new(3));
        assert!(b.checkpoint(Phase::SymEval, 100));
        assert!(b.checkpoint(Phase::Sccp, 100));
        assert!(b.checkpoint(Phase::Solver, 100));
        assert!(!b.checkpoint(Phase::Solver, 1));
        assert!(b.is_exhausted());
        // Costs are irrelevant to the injector; only the count matters.
        assert_eq!(b.report().fuel_consumed, 300);
    }

    #[test]
    fn degradations_and_ladder_steps_accumulate() {
        let b = Budget::with_fuel(0);
        b.record_degradation(Phase::Sccp);
        b.record_degradation(Phase::Sccp);
        b.record_degradation(Phase::Solver);
        b.record_ladder_step("polynomial", "pass-through");
        b.record_ladder_step("polynomial", "pass-through");
        let report = b.report();
        assert_eq!(report.total_degradations(), 3);
        assert_eq!(report.degradations[&Phase::Sccp], 2);
        assert_eq!(
            report.ladder_steps[&("polynomial".to_string(), "pass-through".to_string())],
            2
        );
        assert!(!report.is_clean());
    }

    #[test]
    fn json_rendering_is_stable() {
        let b = Budget::with_fuel(4);
        assert!(b.checkpoint(Phase::ModRef, 4));
        assert!(!b.checkpoint(Phase::ModRef, 1));
        b.record_degradation(Phase::ModRef);
        b.record_ladder_step("pass-through", "literal");
        b.record_anomaly("dce: ssa/ir length mismatch");
        let json = b.report().to_json();
        assert_eq!(
            json,
            "{\"fuel_limit\":4,\"fuel_consumed\":4,\"exhausted\":true,\
             \"degradations\":{\"modref\":1},\
             \"ladder_steps\":[{\"from\":\"pass-through\",\"to\":\"literal\",\"count\":1}],\
             \"anomalies\":{\"dce: ssa/ir length mismatch\":1}}"
        );
    }

    #[test]
    fn anomalies_accumulate_and_spoil_cleanliness() {
        let b = Budget::unlimited();
        assert!(b.report().is_clean());
        b.record_anomaly("ssa: missing by-ref var");
        b.record_anomaly("ssa: missing by-ref var");
        b.record_anomaly("dce: unresolvable def site");
        let report = b.report();
        assert_eq!(report.total_anomalies(), 3);
        assert_eq!(report.anomalies["ssa: missing by-ref var"], 2);
        assert!(!report.is_clean());
        assert!(!report.exhausted, "anomalies are not exhaustion");
        let text = report.to_string();
        assert!(text.contains("anomalies: 3"), "{text}");
        assert!(text.contains("dce: unresolvable def site"), "{text}");
    }

    #[test]
    fn anomaly_keys_are_json_escaped() {
        let b = Budget::unlimited();
        b.record_anomaly("weird \"key\" with \\ and \n control");
        let json = b.report().to_json();
        assert!(
            json.contains("\"weird \\\"key\\\" with \\\\ and \\n control\":1"),
            "{json}"
        );
    }

    #[test]
    fn display_mentions_fuel_and_degradations() {
        let b = Budget::with_fuel(1);
        assert!(b.checkpoint(Phase::SymEval, 1));
        assert!(!b.checkpoint(Phase::SymEval, 1));
        b.record_degradation(Phase::SymEval);
        let text = b.report().to_string();
        assert!(text.contains("fuel: 1 consumed of 1"));
        assert!(text.contains("exhausted: yes"));
        assert!(text.contains("symeval: 1"));
    }

    #[test]
    fn for_limit_maps_none_to_unlimited() {
        assert_eq!(Budget::for_limit(None).fuel_remaining(), None);
        assert_eq!(Budget::for_limit(Some(7)).fuel_remaining(), Some(7));
    }

    #[test]
    fn io_fault_injector_fires_exactly_once_at_trigger() {
        let inj = IoFaultInjector::new(IoFaultKind::Enospc, 3);
        assert!(!inj.should_fire(IoOp::Write));
        assert!(!inj.should_fire(IoOp::Write));
        assert!(inj.should_fire(IoOp::Write));
        assert!(!inj.should_fire(IoOp::Write));
        assert_eq!(inj.injected(), 1);
        assert_eq!(inj.eligible_ops_seen(), 4);
    }

    #[test]
    fn io_fault_injector_ignores_other_op_classes() {
        let inj = IoFaultInjector::new(IoFaultKind::RenameFail, 1);
        assert!(!inj.should_fire(IoOp::Write));
        assert!(!inj.should_fire(IoOp::Read));
        assert_eq!(inj.eligible_ops_seen(), 0);
        assert!(inj.should_fire(IoOp::Rename));
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn io_fault_injector_trigger_zero_never_fires() {
        let inj = IoFaultInjector::new(IoFaultKind::BitFlip, 0);
        for _ in 0..10 {
            assert!(!inj.should_fire(IoOp::Write));
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn io_fault_kinds_have_stable_names_and_targets() {
        let names: Vec<&str> = IoFaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "torn-write",
                "truncate",
                "bit-flip",
                "enospc",
                "eacces",
                "rename-fail"
            ]
        );
        assert_eq!(IoFaultKind::RenameFail.target_op(), IoOp::Rename);
        assert_eq!(IoFaultKind::TornWrite.target_op(), IoOp::Write);
    }

    #[test]
    fn io_fault_injector_is_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<IoFaultInjector>();
    }
}
