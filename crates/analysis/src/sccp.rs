//! Sparse conditional constant propagation (Wegman & Zadeck) over SSA.
//!
//! This is the *intraprocedural* constant propagator the whole study
//! leans on: it implements `gcp(y, s)`-style queries (which operands are
//! provably constant at a point), drives dead-code elimination for the
//! "complete propagation" experiment, provides the purely intraprocedural
//! baseline of Table 3, and — seeded with `CONSTANTS(p)` — performs the
//! final substitution counting.
//!
//! The solver is parameterized over:
//!
//! * the **entry environment** — the lattice value of each variable on
//!   procedure entry (⊥ for the baseline; `CONSTANTS(p)` when seeded by
//!   the interprocedural phase), and
//! * the **call effects** — the lattice value of killed variables and
//!   function results after a call (⊥ without return jump functions;
//!   return-jump-function evaluation with them).

use crate::budget::{Budget, Phase};
use crate::lattice::{lattice_binop, lattice_unop, LatticeVal};
use crate::modref::Slot;
use ipcp_ir::{BlockId, GlobalId, ProcId, Procedure, VarId, VarKind};
use ipcp_ssa::{SsaInstr, SsaName, SsaOperand, SsaProc, SsaTerminator};
use std::collections::HashSet;

/// Supplies lattice values for the effects of a call.
pub trait CallLattice: Sync {
    /// Value of `slot` of `callee` after a call with actual-argument
    /// values `arg(k)` and caller-side global values `global(g)`.
    fn slot_after_call(
        &self,
        callee: ProcId,
        slot: Slot,
        arg: &dyn Fn(u32) -> LatticeVal,
        global: &dyn Fn(GlobalId) -> LatticeVal,
    ) -> LatticeVal;
}

/// Conservative call effects: everything a call touches is ⊥.
#[derive(Debug, Clone, Copy, Default)]
pub struct PessimisticCalls;

impl CallLattice for PessimisticCalls {
    fn slot_after_call(
        &self,
        _callee: ProcId,
        _slot: Slot,
        _arg: &dyn Fn(u32) -> LatticeVal,
        _global: &dyn Fn(GlobalId) -> LatticeVal,
    ) -> LatticeVal {
        LatticeVal::Bottom
    }
}

/// SCCP configuration.
pub struct SccpConfig<'a> {
    /// Lattice value of each variable at procedure entry.
    pub entry_env: &'a dyn Fn(VarId) -> LatticeVal,
    /// Call effect provider.
    pub calls: &'a dyn CallLattice,
}

/// An entry environment with every variable ⊥ (the unseeded baseline).
pub fn bottom_entry(_v: VarId) -> LatticeVal {
    LatticeVal::Bottom
}

/// SCCP results for one procedure.
#[derive(Debug, Clone)]
pub struct SccpResult {
    /// Lattice value of every SSA name (names in never-executed code stay
    /// ⊤).
    pub values: Vec<LatticeVal>,
    /// Whether each block is executable under the seeded assumptions.
    pub executable: Vec<bool>,
}

impl SccpResult {
    /// Value of an operand under this result.
    pub fn of_operand(&self, op: SsaOperand) -> LatticeVal {
        match op {
            SsaOperand::Const(c) => LatticeVal::Const(c),
            SsaOperand::RealConst(_) => LatticeVal::Bottom,
            SsaOperand::Name(n) => self.values[n.index()],
        }
    }
}

/// Runs SCCP on `proc`.
pub fn sccp(proc: &Procedure, ssa: &SsaProc, config: &SccpConfig<'_>) -> SccpResult {
    sccp_budgeted(proc, ssa, config, &Budget::unlimited())
}

/// Runs SCCP on `proc` under a fuel budget. Each block visit draws one
/// unit; on exhaustion the result degrades to the sound worst case —
/// every name ⊥, every block executable — and the degradation is
/// recorded.
pub fn sccp_budgeted(
    proc: &Procedure,
    ssa: &SsaProc,
    config: &SccpConfig<'_>,
    budget: &Budget,
) -> SccpResult {
    let mut values = vec![LatticeVal::Top; ssa.name_count()];
    for (&var, &name) in &ssa.entry_names {
        values[name.index()] = (config.entry_env)(var);
    }

    let nblocks = proc.blocks.len();
    let mut executable = vec![false; nblocks];
    let mut exec_edges: HashSet<(BlockId, BlockId)> = HashSet::new();
    executable[proc.entry().index()] = true;

    // Simple iterate-to-fixpoint driver (the paper itself used "a simple
    // worklist iterative scheme"; monotonicity of every transfer function
    // plus the bounded lattice guarantees termination).
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &ssa.cfg.rpo {
            if !executable[b.index()] {
                continue;
            }
            if !budget.checkpoint(Phase::Sccp, 1) {
                // Sound worst case: no name is constant, all code may run.
                budget.record_degradation(Phase::Sccp);
                return SccpResult {
                    values: vec![LatticeVal::Bottom; ssa.name_count()],
                    executable: vec![true; nblocks],
                };
            }
            let block = ssa.block(b).expect("reachable");

            for phi in &block.phis {
                let mut acc = LatticeVal::Top;
                for &(pred, arg) in &phi.args {
                    if exec_edges.contains(&(pred, b)) {
                        acc = acc.meet(values[arg.index()]);
                    }
                }
                let old = values[phi.dst.index()];
                let new = old.meet(acc);
                if new != old {
                    values[phi.dst.index()] = new;
                    changed = true;
                }
            }

            for instr in &block.instrs {
                changed |= eval_instr(proc, instr, &mut values, config);
            }

            let targets: Vec<BlockId> = match &block.term {
                SsaTerminator::Jump(t) => vec![*t],
                SsaTerminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => match operand_value(&values, *cond) {
                    LatticeVal::Top => vec![],
                    LatticeVal::Const(c) => {
                        vec![if c != 0 { *then_bb } else { *else_bb }]
                    }
                    LatticeVal::Bottom => vec![*then_bb, *else_bb],
                },
                SsaTerminator::Return { .. } | SsaTerminator::Trap(_) => vec![],
            };
            for t in targets {
                if exec_edges.insert((b, t)) {
                    changed = true;
                }
                if !executable[t.index()] {
                    executable[t.index()] = true;
                    changed = true;
                }
            }
        }
    }

    SccpResult { values, executable }
}

/// [`sccp_budgeted`] with a span and summary counters reported to
/// `sink`: `sccp.executable_blocks` and `sccp.const_names` total the
/// result shape. Identical result bytes at any sink.
pub fn sccp_instrumented(
    proc: &Procedure,
    ssa: &SsaProc,
    config: &SccpConfig<'_>,
    budget: &Budget,
    sink: &dyn ipcp_obs::ObsSink,
) -> SccpResult {
    let start = sink.now();
    let result = sccp_budgeted(proc, ssa, config, budget);
    if sink.enabled() {
        sink.span("sccp", "phase", start, sink.now().saturating_sub(start));
        let executable = result.executable.iter().filter(|&&e| e).count();
        let consts = result
            .values
            .iter()
            .filter(|v| matches!(v, LatticeVal::Const(_)))
            .count();
        sink.count("sccp.executable_blocks", executable as u64);
        sink.count("sccp.const_names", consts as u64);
    }
    result
}

fn operand_value(values: &[LatticeVal], op: SsaOperand) -> LatticeVal {
    match op {
        SsaOperand::Const(c) => LatticeVal::Const(c),
        SsaOperand::RealConst(_) => LatticeVal::Bottom,
        SsaOperand::Name(n) => values[n.index()],
    }
}

/// Evaluates one instruction; returns whether any value changed.
fn eval_instr(
    proc: &Procedure,
    instr: &SsaInstr,
    values: &mut [LatticeVal],
    config: &SccpConfig<'_>,
) -> bool {
    let mut changed = false;
    let set = |name: SsaName, new: LatticeVal, values: &mut [LatticeVal], changed: &mut bool| {
        let old = values[name.index()];
        let met = old.meet(new);
        if met != old {
            values[name.index()] = met;
            *changed = true;
        }
    };
    match instr {
        SsaInstr::Copy { dst, src } => {
            let v = operand_value(values, *src);
            set(*dst, v, values, &mut changed);
        }
        SsaInstr::Unary { dst, op, src } => {
            let v = operand_value(values, *src);
            set(*dst, lattice_unop(*op, v), values, &mut changed);
        }
        SsaInstr::Binary { dst, op, lhs, rhs } => {
            let l = operand_value(values, *lhs);
            let r = operand_value(values, *rhs);
            set(*dst, lattice_binop(*op, l, r), values, &mut changed);
        }
        SsaInstr::IntToReal { dst, .. } | SsaInstr::Load { dst, .. } | SsaInstr::Read { dst } => {
            set(*dst, LatticeVal::Bottom, values, &mut changed);
        }
        SsaInstr::Store { .. } | SsaInstr::Print { .. } => {}
        SsaInstr::Call {
            callee,
            args,
            dst,
            kills,
            globals_in,
        } => {
            let arg = |k: u32| -> LatticeVal {
                match args.get(k as usize).and_then(|a| a.value) {
                    Some(op) => operand_value(values, op),
                    None => LatticeVal::Bottom,
                }
            };
            // A global absent from the caller's table is ⊥: the driver
            // augments tables with every transitively-touched global (see
            // `modref::augment_global_vars`), so this fallback only fires
            // on un-augmented programs, where flow-sensitivity is lost.
            let global = |g: GlobalId| -> LatticeVal {
                for &(var, name) in globals_in {
                    if proc.var(var).kind == VarKind::Global(g) {
                        return values[name.index()];
                    }
                }
                LatticeVal::Bottom
            };
            let mut updates: Vec<(SsaName, LatticeVal)> = Vec::new();
            for kill in kills {
                let slot = args
                    .iter()
                    .position(|a| a.by_ref_var == Some(kill.var))
                    .map(|k| Slot::Formal(k as u32))
                    .or_else(|| match proc.var(kill.var).kind {
                        VarKind::Global(g) => Some(Slot::Global(g)),
                        _ => None,
                    });
                let v = match slot {
                    Some(slot) if proc.var(kill.var).ty == ipcp_lang::ast::Ty::INT => {
                        config.calls.slot_after_call(*callee, slot, &arg, &global)
                    }
                    _ => LatticeVal::Bottom,
                };
                updates.push((kill.name, v));
            }
            if let Some(d) = dst {
                let v = config
                    .calls
                    .slot_after_call(*callee, Slot::Result, &arg, &global);
                updates.push((*d, v));
            }
            for (name, v) in updates {
                set(name, v, values, &mut changed);
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::compile_to_ir;
    use ipcp_ssa::{build_ssa, WorstCaseKills};

    fn run_sccp(src: &str, proc_name: &str) -> (ipcp_ir::Program, SsaProc, SccpResult) {
        let program = compile_to_ir(src).expect("compiles");
        let pid = program.proc_by_name(proc_name).expect("proc");
        let proc = program.proc(pid);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let config = SccpConfig {
            entry_env: &bottom_entry,
            calls: &PessimisticCalls,
        };
        let result = sccp(proc, &ssa, &config);
        (program, ssa, result)
    }

    fn first_print_value(src: &str, proc_name: &str) -> LatticeVal {
        let (_, ssa, result) = run_sccp(src, proc_name);
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Print { value } = instr {
                    return result.of_operand(*value);
                }
            }
        }
        panic!("no print");
    }

    #[test]
    fn straight_line_constants() {
        assert_eq!(
            first_print_value("main\nx = 2\ny = x * 3 + 1\nprint(y)\nend\n", "main"),
            LatticeVal::Const(7)
        );
    }

    #[test]
    fn conditional_constant_propagation_prunes_branches() {
        // The classic SCCP win: x is 1 on the only executable path.
        let src = "main\nx = 1\nif x == 1 then\ny = 2\nelse\ny = 3\nend\nprint(y)\nend\n";
        assert_eq!(first_print_value(src, "main"), LatticeVal::Const(2));
        let (_, _, result) = run_sccp(src, "main");
        // The else block never executes.
        assert!(result.executable.iter().filter(|&&e| !e).count() >= 1);
    }

    #[test]
    fn loop_invariant_constant_survives_loop() {
        let src = "main\nk = 5\ns = 0\ndo i = 1, 3\ns = s + k\nend\nprint(k)\nend\n";
        assert_eq!(first_print_value(src, "main"), LatticeVal::Const(5));
    }

    #[test]
    fn loop_carried_is_bottom() {
        let src = "main\ns = 0\ndo i = 1, 3\ns = s + i\nend\nprint(s)\nend\n";
        assert_eq!(first_print_value(src, "main"), LatticeVal::Bottom);
    }

    #[test]
    fn division_edges_agree_with_interpreter() {
        use ipcp_lang::ast::BinOp;
        use ipcp_lang::interp::eval_binop_int;
        // i64::MIN / -1 wraps to i64::MIN; folding must match the runtime.
        let src = "main\nx = -9223372036854775808\ny = x / -1\nprint(y)\nend\n";
        assert_eq!(
            first_print_value(src, "main"),
            LatticeVal::Const(eval_binop_int(BinOp::Div, i64::MIN, -1).unwrap())
        );
        assert_eq!(first_print_value(src, "main"), LatticeVal::Const(i64::MIN));
        // i64::MIN % -1 wraps to 0.
        let src = "main\nx = -9223372036854775808\ny = x % -1\nprint(y)\nend\n";
        assert_eq!(
            first_print_value(src, "main"),
            LatticeVal::Const(eval_binop_int(BinOp::Rem, i64::MIN, -1).unwrap())
        );
        assert_eq!(first_print_value(src, "main"), LatticeVal::Const(0));
    }

    #[test]
    fn division_truncates_toward_zero() {
        // Rust semantics: -7 / 2 == -3 (not -4), and the sign of `%`
        // follows the dividend: -7 % 2 == -1, 7 % -2 == 1.
        for (src, want) in [
            ("main\nx = -7\nprint(x / 2)\nend\n", -3),
            ("main\nx = 7\nprint(x / -2)\nend\n", -3),
            ("main\nx = -7\nprint(x % 2)\nend\n", -1),
            ("main\nx = 7\nprint(x % -2)\nend\n", 1),
        ] {
            assert_eq!(
                first_print_value(src, "main"),
                LatticeVal::Const(want),
                "{src}"
            );
        }
    }

    #[test]
    fn divide_by_zero_is_never_folded() {
        // A compile-time trap is not a constant: the division stays in the
        // program so the runtime error is preserved.
        assert_eq!(
            first_print_value("main\nx = 1\nprint(x / 0)\nend\n", "main"),
            LatticeVal::Bottom
        );
        assert_eq!(
            first_print_value("main\nx = 1\nprint(x % 0)\nend\n", "main"),
            LatticeVal::Bottom
        );
    }

    #[test]
    fn divide_with_unknown_rhs_is_never_folded() {
        // `0 / n` may trap when n == 0: no absorbing shortcut may apply.
        for src in [
            "main\nread(n)\nprint(0 / n)\nend\n",
            "main\nread(n)\nprint(0 % n)\nend\n",
            "main\nread(n)\nprint(8 / n)\nend\n",
        ] {
            assert_eq!(first_print_value(src, "main"), LatticeVal::Bottom, "{src}");
        }
    }

    #[test]
    fn read_is_bottom() {
        assert_eq!(
            first_print_value("main\nread(x)\nprint(x)\nend\n", "main"),
            LatticeVal::Bottom
        );
    }

    #[test]
    fn entry_formals_bottom_by_default() {
        assert_eq!(
            first_print_value("proc f(a)\nprint(a)\nend\nmain\ncall f(3)\nend\n", "f"),
            LatticeVal::Bottom
        );
    }

    #[test]
    fn seeded_entry_env() {
        let src = "proc f(a)\nprint(a + 1)\nend\nmain\ncall f(3)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let pid = program.proc_by_name("f").unwrap();
        let proc = program.proc(pid);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let entry = |v: VarId| -> LatticeVal {
            if proc.var(v).kind == VarKind::Formal(0) {
                LatticeVal::Const(3)
            } else {
                LatticeVal::Bottom
            }
        };
        let config = SccpConfig {
            entry_env: &entry,
            calls: &PessimisticCalls,
        };
        let result = sccp(proc, &ssa, &config);
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Print { value } = instr {
                    assert_eq!(result.of_operand(*value), LatticeVal::Const(4));
                    return;
                }
            }
        }
        panic!("no print");
    }

    #[test]
    fn call_kills_are_bottom_with_pessimistic_calls() {
        let src = "global g\nproc t()\ng = 1\nend\nproc f()\ng = 5\ncall t()\nprint(g)\nend\nmain\ncall f()\nend\n";
        assert_eq!(first_print_value(src, "f"), LatticeVal::Bottom);
    }

    #[test]
    fn call_effects_are_pluggable() {
        struct AlwaysNine;
        impl CallLattice for AlwaysNine {
            fn slot_after_call(
                &self,
                _c: ProcId,
                _s: Slot,
                _a: &dyn Fn(u32) -> LatticeVal,
                _g: &dyn Fn(GlobalId) -> LatticeVal,
            ) -> LatticeVal {
                LatticeVal::Const(9)
            }
        }
        let src = "func f(x)\nreturn x\nend\nmain\ny = f(1)\nprint(y)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let proc = program.proc(program.main);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let config = SccpConfig {
            entry_env: &bottom_entry,
            calls: &AlwaysNine,
        };
        let result = sccp(proc, &ssa, &config);
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Print { value } = instr {
                    assert_eq!(result.of_operand(*value), LatticeVal::Const(9));
                    return;
                }
            }
        }
        panic!("no print");
    }

    #[test]
    fn while_false_never_executes() {
        let src = "main\nx = 0\nwhile x do\ny = 1\nend\nprint(x)\nend\n";
        let (_, _, result) = run_sccp(src, "main");
        // Loop body is not executable.
        assert!(result.executable.iter().any(|&e| !e));
        assert_eq!(first_print_value(src, "main"), LatticeVal::Const(0));
    }

    #[test]
    fn division_by_zero_constant_is_bottom() {
        let src = "main\nx = 1\nz = 0\nprint(x / z)\nend\n";
        assert_eq!(first_print_value(src, "main"), LatticeVal::Bottom);
    }

    #[test]
    fn mul_zero_shortcut() {
        let src = "main\nread(x)\nprint(x * 0)\nend\n";
        assert_eq!(first_print_value(src, "main"), LatticeVal::Const(0));
    }

    #[test]
    fn exhausted_budget_degrades_to_all_bottom_all_executable() {
        let src = "main\nx = 2\ny = x * 3 + 1\nprint(y)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let proc = program.proc(program.main);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let config = SccpConfig {
            entry_env: &bottom_entry,
            calls: &PessimisticCalls,
        };
        let budget = Budget::with_fuel(0);
        let result = sccp_budgeted(proc, &ssa, &config, &budget);
        assert!(result.values.iter().all(|&v| v == LatticeVal::Bottom));
        assert!(result.executable.iter().all(|&e| e));
        assert!(budget.report().degradations[&Phase::Sccp] > 0);
        // Partial budgets stay sound: anything not ⊥ matches the full run.
        let full = sccp(proc, &ssa, &config);
        for fuel in 0..12u64 {
            let partial = sccp_budgeted(proc, &ssa, &config, &Budget::with_fuel(fuel));
            for (i, &v) in partial.values.iter().enumerate() {
                if let LatticeVal::Const(c) = v {
                    assert_eq!(full.values[i], LatticeVal::Const(c), "fuel {fuel}");
                }
            }
        }
    }

    #[test]
    fn unreachable_code_values_stay_top() {
        let src = "proc f()\nreturn\nx = 1\nprint(x)\nend\nmain\ncall f()\nend\n";
        let (_, _, result) = run_sccp(src, "f");
        // No name is claimed constant: entry names seed ⊥ and the dead
        // block's code has no SSA names at all.
        assert!(result
            .values
            .iter()
            .all(|v| !matches!(v, LatticeVal::Const(_))));
        // The dead block is simply not executable.
        assert!(result.executable.iter().any(|&e| !e));
    }
}
