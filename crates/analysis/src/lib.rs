//! # ipcp-analysis — program analyses beneath interprocedural constant
//! propagation
//!
//! Everything the Grove–Torczon study needed from ParaScope, rebuilt over
//! the Minifor IR:
//!
//! * [`callgraph`] — call graph + SCC condensation (bottom-up order for
//!   return-jump-function generation),
//! * [`modref`] — interprocedural MOD/REF side-effect summaries
//!   (Cooper–Kennedy style, alias-free FORTRAN rules) and the
//!   MOD-backed SSA kill oracle,
//! * [`par`] — the dependency-free scoped thread pool behind the
//!   deterministic parallel analysis engine (per-procedure fan-out and
//!   SCC-wave scheduling),
//! * [`lattice`] — the constant lattice of the paper's Figure 1,
//! * [`poly`] / [`symexpr`] — polynomials and context-independent
//!   symbolic expressions over entry slots,
//! * [`symeval`] — SSA symbolic value numbering (the jump-function
//!   generator's engine),
//! * [`mod@sccp`] — Wegman–Zadeck sparse conditional constant propagation
//!   (the intraprocedural propagator, seedable with interprocedural
//!   `CONSTANTS` sets),
//! * [`dce`] — branch folding, unreachable-code and dead-assignment
//!   elimination (for the "complete propagation" experiment),
//! * [`alias`] — a lint for the FORTRAN no-alias rule every analysis
//!   assumes,
//! * [`budget`] — fuel budgets, graceful degradation bookkeeping, and
//!   the deterministic fault-injection harness behind the robustness
//!   tests.

pub mod alias;
pub mod budget;
pub mod callgraph;
pub mod codec;
pub mod dce;
pub mod dense;
pub mod lattice;
pub mod modref;
pub mod par;
pub mod poly;
pub mod sccp;
pub mod subscripts;
pub mod symeval;
pub mod symexpr;

pub use alias::{check_aliasing, AliasKind, AliasViolation};
pub use budget::{
    Budget, ExhaustionPolicy, FaultInjector, FuelSource, IoFaultInjector, IoFaultKind, IoOp, Phase,
    RobustnessReport,
};
pub use callgraph::{CallGraph, CallSite};
pub use dense::SlotTable;
pub use lattice::{lattice_binop, lattice_unop, LatticeVal};
pub use modref::compute_modref_obs;
pub use modref::{
    augment_global_vars, compute_modref, compute_modref_budgeted, compute_modref_par, slot_of_var,
    ModKills, ModRefInfo, Slot,
};
pub use par::{par_map, par_map_obs, scc_waves, wave_jobs, Parallelism, PAR_SPAWN_COST_UNITS};
pub use poly::{Poly, PolyCaps};
pub use sccp::{
    bottom_entry, sccp, sccp_budgeted, sccp_instrumented, CallLattice, PessimisticCalls,
    SccpConfig, SccpResult,
};
pub use subscripts::{classify_subscripts, count_subscripts, SubscriptClass, SubscriptCounts};
pub use symeval::{
    symbolic_eval, symbolic_eval_budgeted, CallSymbolics, NoCallSymbolics, Sym, SymMap,
};
pub use symexpr::{ExprCaps, SymExpr};
