//! Dense slot-indexed tables — the flat hot-path substrate.
//!
//! The paper's per-procedure value contexts were held in
//! `BTreeMap<Slot, V>`: ergonomic at the ~20-procedure scale of the
//! original study, but at 100k procedures the per-node heap allocation
//! and pointer chasing dominate the solver. A [`SlotTable`] stores the
//! same (slot → value) mapping as two parallel vectors — a strictly
//! increasing slot vector and a value vector — so lookups are a formal
//! fast path or one cache-friendly binary search, iteration is a linear
//! scan, and the whole context is two contiguous allocations.
//!
//! The representation is *order-faithful*: iteration yields entries in
//! ascending [`Slot`] order, exactly as the `BTreeMap` it replaced did,
//! which is what keeps the flattened solver bit-identical to the golden
//! map-based replica (`ipcp_bench::framework::legacy_solve`).

use crate::modref::Slot;
use std::collections::BTreeMap;

/// A map from [`Slot`] to `V` stored as parallel sorted vectors.
///
/// Slots form a per-procedure universe fixed at construction
/// ([`SlotTable::from_universe`]); inserts of slots outside the universe
/// still work (shifting the tail, as a `Vec::insert`) so the table is a
/// drop-in `BTreeMap` replacement, but the hot paths never take that
/// branch — context universes come from `ModRefInfo::param_slots` and
/// every transfer function writes inside them.
#[derive(Clone, PartialEq, Eq)]
pub struct SlotTable<V> {
    slots: Vec<Slot>,
    vals: Vec<V>,
}

impl<V> Default for SlotTable<V> {
    fn default() -> Self {
        SlotTable {
            slots: Vec::new(),
            vals: Vec::new(),
        }
    }
}

impl<V> SlotTable<V> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// A table over `slots` (strictly increasing), every value `fill`.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `slots` is not strictly increasing.
    pub fn from_universe(slots: Vec<Slot>, fill: V) -> Self
    where
        V: Clone,
    {
        debug_assert!(
            slots.windows(2).all(|w| w[0] < w[1]),
            "slot universe must be strictly increasing"
        );
        let vals = vec![fill; slots.len()];
        SlotTable { slots, vals }
    }

    /// A table from (slot, value) pairs in strictly increasing slot
    /// order.
    pub fn from_sorted_pairs(pairs: Vec<(Slot, V)>) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "pairs must be strictly increasing by slot"
        );
        let mut slots = Vec::with_capacity(pairs.len());
        let mut vals = Vec::with_capacity(pairs.len());
        for (s, v) in pairs {
            slots.push(s);
            vals.push(v);
        }
        SlotTable { slots, vals }
    }

    /// A table with the contents of a `BTreeMap` (already sorted).
    pub fn from_map(map: BTreeMap<Slot, V>) -> Self {
        Self::from_sorted_pairs(map.into_iter().collect())
    }

    /// Index of `slot`, or the insertion point when absent.
    ///
    /// Formals are a fast path: in a `param_slots` universe (all scalar
    /// formals present) `Formal(i)` sits at index `i`, so the common
    /// lookup is one comparison, no search.
    #[inline]
    fn idx(&self, slot: Slot) -> Result<usize, usize> {
        if let Slot::Formal(i) = slot {
            let i = i as usize;
            if self.slots.get(i) == Some(&slot) {
                return Ok(i);
            }
        }
        self.slots.binary_search(&slot)
    }

    /// The value of `slot`, if tracked.
    #[inline]
    pub fn get(&self, slot: &Slot) -> Option<&V> {
        self.idx(*slot).ok().map(|i| &self.vals[i])
    }

    /// Whether `slot` is tracked.
    #[inline]
    pub fn contains_key(&self, slot: &Slot) -> bool {
        self.idx(*slot).is_ok()
    }

    /// Sets `slot` to `v`, returning the previous value when the slot
    /// was already tracked (`BTreeMap::insert` semantics).
    pub fn insert(&mut self, slot: Slot, v: V) -> Option<V> {
        match self.idx(slot) {
            Ok(i) => Some(std::mem::replace(&mut self.vals[i], v)),
            Err(i) => {
                self.slots.insert(i, slot);
                self.vals.insert(i, v);
                None
            }
        }
    }

    /// Number of tracked slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slot is tracked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The tracked slots, ascending.
    pub fn keys(&self) -> impl Iterator<Item = &Slot> + '_ {
        self.slots.iter()
    }

    /// The values, in ascending slot order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.vals.iter()
    }

    /// Mutable values, in ascending slot order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> + '_ {
        self.vals.iter_mut()
    }

    /// (slot, value) pairs in ascending slot order — `BTreeMap::iter`
    /// shape, so `for (&slot, &val) in table.iter()` works unchanged.
    pub fn iter(&self) -> impl Iterator<Item = (&Slot, &V)> + '_ {
        self.slots.iter().zip(self.vals.iter())
    }

    /// The table's contents as the `BTreeMap` it replaces.
    pub fn to_map(&self) -> BTreeMap<Slot, V>
    where
        V: Clone,
    {
        self.iter().map(|(s, v)| (*s, v.clone())).collect()
    }
}

impl<'a, V> IntoIterator for &'a SlotTable<V> {
    type Item = (&'a Slot, &'a V);
    type IntoIter = std::iter::Zip<std::slice::Iter<'a, Slot>, std::slice::Iter<'a, V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.slots.iter().zip(self.vals.iter())
    }
}

impl<V> FromIterator<(Slot, V)> for SlotTable<V> {
    /// Collects pairs in any order (sorted on the way in, last write to
    /// a slot wins — `BTreeMap::from_iter` semantics).
    fn from_iter<I: IntoIterator<Item = (Slot, V)>>(iter: I) -> Self {
        let mut table = SlotTable::new();
        for (s, v) in iter {
            table.insert(s, v);
        }
        table
    }
}

impl<V> std::ops::Index<&Slot> for SlotTable<V> {
    type Output = V;

    fn index(&self, slot: &Slot) -> &V {
        self.get(slot).expect("slot not tracked")
    }
}

/// Renders exactly like the `BTreeMap` it replaced, so debug output —
/// and the fingerprints derived from it — keep the map shape.
impl<V: std::fmt::Debug> std::fmt::Debug for SlotTable<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Equality against the map representation — what the golden replica
/// comparisons (`ipcp_bench::framework::assert_solver_agreement`) check.
impl<V: PartialEq> PartialEq<BTreeMap<Slot, V>> for SlotTable<V> {
    fn eq(&self, other: &BTreeMap<Slot, V>) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::GlobalId;

    fn g(i: u32) -> Slot {
        Slot::Global(GlobalId(i))
    }

    #[test]
    fn universe_lookup_and_insert() {
        let mut t = SlotTable::from_universe(vec![Slot::Formal(0), Slot::Formal(1), g(2)], 0i64);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&Slot::Formal(1)), Some(&0));
        assert_eq!(t.insert(Slot::Formal(1), 7), Some(0));
        assert_eq!(t.get(&Slot::Formal(1)), Some(&7));
        assert_eq!(t.get(&g(0)), None);
        assert!(!t.contains_key(&Slot::Result));
    }

    #[test]
    fn out_of_universe_insert_keeps_order() {
        let mut t = SlotTable::from_universe(vec![Slot::Formal(0), g(5)], 1);
        assert_eq!(t.insert(g(2), 9), None);
        assert_eq!(t.insert(Slot::Result, 3), None);
        let keys: Vec<Slot> = t.keys().copied().collect();
        assert_eq!(keys, vec![Slot::Formal(0), g(2), g(5), Slot::Result]);
    }

    #[test]
    fn sparse_formals_fall_back_to_search() {
        // Formal(0) missing (e.g. an array formal): Formal(1) is not at
        // index 1, the fast path must miss and the search must find it.
        let t = SlotTable::from_sorted_pairs(vec![(Slot::Formal(1), 4), (g(0), 5)]);
        assert_eq!(t.get(&Slot::Formal(1)), Some(&4));
        assert_eq!(t.get(&Slot::Formal(0)), None);
    }

    #[test]
    fn matches_btreemap_debug_and_eq() {
        let map: BTreeMap<Slot, i64> = [(Slot::Formal(0), 1), (g(3), 2), (Slot::Result, 9)]
            .into_iter()
            .collect();
        let t = SlotTable::from_map(map.clone());
        assert_eq!(format!("{t:?}"), format!("{map:?}"));
        assert!(t == map);
        assert_eq!(t.to_map(), map);
        let mut smaller = map.clone();
        smaller.remove(&g(3));
        assert!(t != smaller);
    }

    #[test]
    fn from_iter_last_write_wins() {
        let t: SlotTable<i64> = [(g(1), 1), (Slot::Formal(0), 2), (g(1), 3)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t[&g(1)], 3);
    }
}
