//! Symbolic evaluation over SSA — the analogue of the paper's "SSA-based
//! value number graph" (§4.1).
//!
//! Every SSA name receives a [`Sym`]: either a context-independent
//! [`SymExpr`] over the procedure's entry slots, or ⊥. Formals and
//! globals start as themselves; locals' undefined entry values, real
//! values, array loads, and `read` results are ⊥ (paper §4,
//! limitations 1–2). Phi nodes meet their arguments structurally: equal
//! expressions survive, anything else (including loop-carried values) is
//! ⊥ — a single pessimistic reverse-postorder pass, which is exactly as
//! strong as the paper's value numbering needs to be.
//!
//! The effect of calls on the caller's values (killed by-ref actuals,
//! killed globals, function results) is delegated to a
//! [`CallSymbolics`] provider; `ipcp-core` plugs in return-jump-function
//! evaluation there, and [`NoCallSymbolics`] models the
//! no-return-jump-function configurations.

use crate::budget::{Budget, Phase};
use crate::modref::Slot;
use crate::symexpr::{ExprCaps, SymExpr};
use ipcp_ir::{GlobalId, ProcId, Procedure, VarKind};
use ipcp_lang::ast::{BinOp, UnOp};
use ipcp_ssa::{SsaInstr, SsaName, SsaOperand, SsaProc};

/// A symbolic value: a representable expression or ⊥.
#[derive(Debug, Clone, PartialEq)]
pub enum Sym {
    /// A context-independent expression over entry slots.
    Expr(SymExpr),
    /// Not representable / not constant.
    Bottom,
}

impl Sym {
    /// A constant symbolic value.
    pub fn constant(c: i64) -> Sym {
        Sym::Expr(SymExpr::constant(c))
    }

    /// The expression, if any.
    pub fn as_expr(&self) -> Option<&SymExpr> {
        match self {
            Sym::Expr(e) => Some(e),
            Sym::Bottom => None,
        }
    }

    /// The constant, if the value is one.
    pub fn as_const(&self) -> Option<i64> {
        self.as_expr().and_then(SymExpr::as_const)
    }

    /// True for ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Sym::Bottom)
    }
}

/// Supplies the symbolic value of a callee slot after a call.
pub trait CallSymbolics: Sync {
    /// Value of `slot` (a formal, global, or [`Slot::Result`]) of `callee`
    /// after a call whose actual argument values are `arg_sym(k)` and
    /// whose caller-side global values are `global_sym(g)`.
    fn slot_after_call(
        &self,
        callee: ProcId,
        slot: Slot,
        arg_sym: &dyn Fn(u32) -> Sym,
        global_sym: &dyn Fn(GlobalId) -> Sym,
    ) -> Sym;
}

/// Conservative provider: everything a call touches becomes ⊥ (the
/// "no return jump functions" configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCallSymbolics;

impl CallSymbolics for NoCallSymbolics {
    fn slot_after_call(
        &self,
        _callee: ProcId,
        _slot: Slot,
        _arg_sym: &dyn Fn(u32) -> Sym,
        _global_sym: &dyn Fn(GlobalId) -> Sym,
    ) -> Sym {
        Sym::Bottom
    }
}

/// Options for symbolic evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymEvalOptions {
    /// Build gated (γ) values for two-way if-join phis instead of ⊥ when
    /// the branch values differ — the gated-single-assignment extension
    /// the paper sketches in §4.2. Off by default (the paper's analyzer
    /// did not do this; it needed iterated dead-code elimination to get
    /// the same effect).
    pub gated_phis: bool,
}

/// Symbolic values of every SSA name of one procedure.
#[derive(Debug, Clone)]
pub struct SymMap {
    values: Vec<Sym>,
}

impl SymMap {
    /// The value of `name`.
    pub fn of(&self, name: SsaName) -> &Sym {
        &self.values[name.index()]
    }

    /// The value of an operand (literals become constant expressions;
    /// real literals are ⊥).
    pub fn of_operand(&self, op: SsaOperand) -> Sym {
        match op {
            SsaOperand::Const(c) => Sym::constant(c),
            SsaOperand::RealConst(_) => Sym::Bottom,
            SsaOperand::Name(n) => self.values[n.index()].clone(),
        }
    }

    /// Number of tracked names.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Runs symbolic evaluation for `proc` with default options.
pub fn symbolic_eval(proc: &Procedure, ssa: &SsaProc, calls: &dyn CallSymbolics) -> SymMap {
    symbolic_eval_with(proc, ssa, calls, SymEvalOptions::default())
}

/// Runs symbolic evaluation for `proc`.
pub fn symbolic_eval_with(
    proc: &Procedure,
    ssa: &SsaProc,
    calls: &dyn CallSymbolics,
    options: SymEvalOptions,
) -> SymMap {
    symbolic_eval_budgeted(proc, ssa, calls, options, &Budget::unlimited())
}

/// Runs symbolic evaluation for `proc` under a fuel budget. Each phi and
/// instruction draws one unit; once the budget is exhausted the remaining
/// names become ⊥ — coarser than the full result, never different.
pub fn symbolic_eval_budgeted(
    proc: &Procedure,
    ssa: &SsaProc,
    calls: &dyn CallSymbolics,
    options: SymEvalOptions,
    budget: &Budget,
) -> SymMap {
    let caps = ExprCaps::for_fuel(budget.fuel_remaining());
    let mut values: Vec<Option<Sym>> = vec![None; ssa.name_count()];

    // Entry names: formals and globals are themselves; everything else ⊥.
    for (&var, &name) in &ssa.entry_names {
        let decl = proc.var(var);
        let sym = if decl.ty == ipcp_lang::ast::Ty::INT {
            match decl.kind {
                VarKind::Formal(i) => Sym::Expr(SymExpr::var(Slot::Formal(i))),
                VarKind::Global(g) => Sym::Expr(SymExpr::var(Slot::Global(g))),
                VarKind::Local | VarKind::Temp => Sym::Bottom,
            }
        } else {
            Sym::Bottom
        };
        values[name.index()] = Some(sym);
    }

    let mut eval = Evaluator {
        proc,
        ssa,
        calls,
        values,
        options,
        budget: budget.clone(),
        caps,
    };
    for &b in &eval.ssa.cfg.rpo.clone() {
        eval.eval_block(b);
    }

    SymMap {
        values: eval
            .values
            .into_iter()
            .map(|v| v.unwrap_or(Sym::Bottom))
            .collect(),
    }
}

struct Evaluator<'a> {
    proc: &'a Procedure,
    ssa: &'a SsaProc,
    calls: &'a dyn CallSymbolics,
    values: Vec<Option<Sym>>,
    options: SymEvalOptions,
    budget: Budget,
    caps: ExprCaps,
}

impl Evaluator<'_> {
    fn operand(&self, op: SsaOperand) -> Sym {
        match op {
            SsaOperand::Const(c) => Sym::constant(c),
            SsaOperand::RealConst(_) => Sym::Bottom,
            SsaOperand::Name(n) => {
                // Dominance + RPO guarantee non-phi uses are computed;
                // back-edge phi arguments are handled at the phi itself.
                self.values[n.index()].clone().unwrap_or(Sym::Bottom)
            }
        }
    }

    fn set(&mut self, name: SsaName, sym: Sym) {
        self.values[name.index()] = Some(sym);
    }

    fn eval_block(&mut self, b: ipcp_ir::BlockId) {
        let block = self.ssa.block(b).expect("reachable").clone();

        for phi in &block.phis {
            if !self.budget.checkpoint(Phase::SymEval, 1) {
                self.budget.record_degradation(Phase::SymEval);
                self.set(phi.dst, Sym::Bottom);
                continue;
            }
            let mut merged: Option<Sym> = None;
            let mut bottom = false;
            for &(_, arg) in &phi.args {
                let v = match &self.values[arg.index()] {
                    Some(v) => v.clone(),
                    None => Sym::Bottom, // back edge: pessimistic
                };
                match (&merged, &v) {
                    (_, Sym::Bottom) => {
                        bottom = true;
                        break;
                    }
                    (None, _) => merged = Some(v),
                    (Some(m), _) => {
                        if *m != v {
                            bottom = true;
                            break;
                        }
                    }
                }
            }
            let mut result = match (bottom, merged) {
                (false, Some(v)) => v,
                _ => Sym::Bottom,
            };
            if result.is_bottom() && self.options.gated_phis {
                if let Some(gated) = self.gated_phi(b, phi) {
                    result = gated;
                }
            }
            self.set(phi.dst, result);
        }

        for instr in &block.instrs {
            if !self.budget.checkpoint(Phase::SymEval, 1) {
                self.budget.record_degradation(Phase::SymEval);
                self.bottom_dsts(instr);
                continue;
            }
            self.eval_instr(instr);
        }
    }

    /// Sets every name the instruction defines to ⊥ — the degraded
    /// transfer function used once the budget is exhausted.
    fn bottom_dsts(&mut self, instr: &SsaInstr) {
        match instr {
            SsaInstr::Copy { dst, .. }
            | SsaInstr::Unary { dst, .. }
            | SsaInstr::Binary { dst, .. }
            | SsaInstr::IntToReal { dst, .. }
            | SsaInstr::Load { dst, .. }
            | SsaInstr::Read { dst } => self.set(*dst, Sym::Bottom),
            SsaInstr::Store { .. } | SsaInstr::Print { .. } => {}
            SsaInstr::Call { dst, kills, .. } => {
                let names: Vec<SsaName> = kills
                    .iter()
                    .map(|k| k.name)
                    .chain(dst.iter().copied())
                    .collect();
                for name in names {
                    self.set(name, Sym::Bottom);
                }
            }
        }
    }

    /// Attempts to build a gated (γ) value for a two-way if-join phi: the
    /// immediate dominator must end in a branch whose arms dominate the
    /// two (forward-edge) predecessors exclusively, with the arm blocks
    /// entered only from that branch.
    fn gated_phi(&self, b: ipcp_ir::BlockId, phi: &ipcp_ssa::Phi) -> Option<Sym> {
        let [(p1, n1), (p2, n2)] = phi.args[..] else {
            return None;
        };
        let my_rpo = self.ssa.cfg.rpo_index[b.index()];
        if self.ssa.cfg.rpo_index[p1.index()] >= my_rpo
            || self.ssa.cfg.rpo_index[p2.index()] >= my_rpo
        {
            return None; // back edge: not an if-join
        }
        let d = self.ssa.dom.idom(b)?;
        let d_block = self.ssa.block(d)?;
        let ipcp_ssa::SsaTerminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = d_block.term
        else {
            return None;
        };
        if then_bb == else_bb {
            return None;
        }
        // The arms must be entered only through the branch.
        if self.ssa.cfg.preds[then_bb.index()].len() != 1
            || self.ssa.cfg.preds[else_bb.index()].len() != 1
        {
            return None;
        }
        let classify = |p: ipcp_ir::BlockId| -> Option<bool> {
            let via_then = self.ssa.dom.dominates(then_bb, p);
            let via_else = self.ssa.dom.dominates(else_bb, p);
            match (via_then, via_else) {
                (true, false) => Some(true),
                (false, true) => Some(false),
                _ => None,
            }
        };
        let (then_name, else_name) = match (classify(p1)?, classify(p2)?) {
            (true, false) => (n1, n2),
            (false, true) => (n2, n1),
            _ => return None,
        };
        let cond_sym = match cond {
            SsaOperand::Const(c) => Sym::constant(c),
            SsaOperand::RealConst(_) => Sym::Bottom,
            SsaOperand::Name(n) => self.values[n.index()].clone().unwrap_or(Sym::Bottom),
        };
        let cond_expr = cond_sym.as_expr()?;
        let then_sym = self.values[then_name.index()]
            .clone()
            .unwrap_or(Sym::Bottom);
        let else_sym = self.values[else_name.index()]
            .clone()
            .unwrap_or(Sym::Bottom);
        let gate = SymExpr::gate_with(
            cond_expr,
            then_sym.as_expr(),
            else_sym.as_expr(),
            &self.caps,
        )?;
        Some(Sym::Expr(gate))
    }

    fn eval_instr(&mut self, instr: &SsaInstr) {
        match instr {
            SsaInstr::Copy { dst, src } => {
                let v = self.operand(*src);
                self.set(*dst, v);
            }
            SsaInstr::Unary { dst, op, src } => {
                let v = self.operand(*src);
                let caps = self.caps;
                let r = match (op, v) {
                    (_, Sym::Bottom) => Sym::Bottom,
                    (UnOp::Neg, Sym::Expr(e)) => {
                        SymExpr::neg_with(&e, &caps).map_or(Sym::Bottom, Sym::Expr)
                    }
                    (UnOp::Not, Sym::Expr(e)) => {
                        SymExpr::not_with(&e, &caps).map_or(Sym::Bottom, Sym::Expr)
                    }
                };
                self.set(*dst, r);
            }
            SsaInstr::Binary { dst, op, lhs, rhs } => {
                let l = self.operand(*lhs);
                let r = self.operand(*rhs);
                // Expression construction is the part that can blow up;
                // it draws from its own phase so the report attributes
                // the cost of symbolic arithmetic separately.
                let result = if l.is_bottom() && r.is_bottom() {
                    Sym::Bottom
                } else if self.budget.checkpoint(Phase::Poly, 1) {
                    sym_binop_with(*op, &l, &r, &self.caps)
                } else {
                    self.budget.record_degradation(Phase::Poly);
                    Sym::Bottom
                };
                self.set(*dst, result);
            }
            SsaInstr::IntToReal { dst, .. }
            | SsaInstr::Load { dst, .. }
            | SsaInstr::Read { dst } => {
                self.set(*dst, Sym::Bottom);
            }
            SsaInstr::Store { .. } | SsaInstr::Print { .. } => {}
            SsaInstr::Call {
                callee,
                args,
                dst,
                kills,
                globals_in,
            } => {
                let arg_sym = |k: u32| -> Sym {
                    match args.get(k as usize).and_then(|a| a.value) {
                        Some(op) => match op {
                            SsaOperand::Const(c) => Sym::constant(c),
                            SsaOperand::RealConst(_) => Sym::Bottom,
                            SsaOperand::Name(n) => {
                                self.values[n.index()].clone().unwrap_or(Sym::Bottom)
                            }
                        },
                        None => Sym::Bottom,
                    }
                };
                // A global absent from the caller's table is ⊥: the driver
                // augments tables with every transitively-touched global
                // (`modref::augment_global_vars`), which both preserves its
                // flow-sensitive value here and lets pass-through detection
                // see an untouched global as its own entry value.
                let global_sym = |g: GlobalId| -> Sym {
                    for &(var, name) in globals_in {
                        if self.proc.var(var).kind == VarKind::Global(g) {
                            return self.values[name.index()].clone().unwrap_or(Sym::Bottom);
                        }
                    }
                    Sym::Bottom
                };

                let mut updates: Vec<(SsaName, Sym)> = Vec::new();
                for kill in kills {
                    let slot = args
                        .iter()
                        .position(|a| a.by_ref_var == Some(kill.var))
                        .map(|k| Slot::Formal(k as u32))
                        .or_else(|| match self.proc.var(kill.var).kind {
                            VarKind::Global(g) => Some(Slot::Global(g)),
                            _ => None,
                        });
                    let sym = match slot {
                        Some(slot) if self.proc.var(kill.var).ty == ipcp_lang::ast::Ty::INT => self
                            .calls
                            .slot_after_call(*callee, slot, &arg_sym, &global_sym),
                        _ => Sym::Bottom,
                    };
                    updates.push((kill.name, sym));
                }
                if let Some(d) = dst {
                    let sym =
                        self.calls
                            .slot_after_call(*callee, Slot::Result, &arg_sym, &global_sym);
                    updates.push((*d, sym));
                }
                for (name, sym) in updates {
                    self.set(name, sym);
                }
            }
        }
    }
}

/// Symbolic transfer function of one binary operation.
pub fn sym_binop(op: BinOp, l: &Sym, r: &Sym) -> Sym {
    sym_binop_with(op, l, r, &ExprCaps::default())
}

/// [`sym_binop`] under explicit size bounds.
pub fn sym_binop_with(op: BinOp, l: &Sym, r: &Sym, caps: &ExprCaps) -> Sym {
    // Absorbing shortcuts survive a ⊥ on the other side.
    let (cl, cr) = (l.as_const(), r.as_const());
    match op {
        BinOp::Mul | BinOp::And if cl == Some(0) || cr == Some(0) => {
            return Sym::constant(0);
        }
        BinOp::Or if cl.is_some_and(|c| c != 0) || cr.is_some_and(|c| c != 0) => {
            return Sym::constant(1);
        }
        _ => {}
    }
    match (l, r) {
        (Sym::Expr(a), Sym::Expr(b)) => {
            SymExpr::binop_with(op, a, b, caps).map_or(Sym::Bottom, Sym::Expr)
        }
        _ => Sym::Bottom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::{compile_to_ir, Program};
    use ipcp_ssa::{build_ssa, WorstCaseKills};

    /// Returns the symbolic value of the operand printed by the first
    /// `print` in `proc_name`.
    fn sym_of_first_print(src: &str, proc_name: &str) -> Sym {
        let (program, ssa, map) = eval_proc(src, proc_name);
        let _ = program;
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Print { value } = instr {
                    return map.of_operand(*value);
                }
            }
        }
        panic!("no print in {proc_name}");
    }

    fn eval_proc(src: &str, proc_name: &str) -> (Program, SsaProc, SymMap) {
        let program = compile_to_ir(src).expect("compiles");
        let pid = program.proc_by_name(proc_name).expect("proc");
        let proc = program.proc(pid);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let map = symbolic_eval(proc, &ssa, &NoCallSymbolics);
        (program, ssa, map)
    }

    #[test]
    fn constants_fold_through_straight_line() {
        let s = sym_of_first_print("main\nx = 2\ny = x * 3 + 4\nprint(y)\nend\n", "main");
        assert_eq!(s.as_const(), Some(10));
    }

    #[test]
    fn formals_are_symbolic() {
        let s = sym_of_first_print(
            "proc f(a, b)\nprint(a * 2 + b)\nend\nmain\ncall f(1, 2)\nend\n",
            "f",
        );
        let e = s.as_expr().expect("expression");
        assert_eq!(e.support().len(), 2);
        assert!(e.support().contains(&Slot::Formal(0)));
        assert!(e.support().contains(&Slot::Formal(1)));
    }

    #[test]
    fn pass_through_shape_detected() {
        let s = sym_of_first_print(
            "proc f(a)\nx = a\ny = x + 0\nprint(y)\nend\nmain\ncall f(1)\nend\n",
            "f",
        );
        assert_eq!(s.as_expr().and_then(SymExpr::as_var), Some(Slot::Formal(0)));
    }

    #[test]
    fn globals_are_symbolic() {
        let s = sym_of_first_print("global n\nmain\nprint(n + 1)\nend\n", "main");
        let e = s.as_expr().unwrap();
        assert_eq!(e.support().len(), 1);
    }

    #[test]
    fn reads_and_loads_are_bottom() {
        let s = sym_of_first_print("main\nread(x)\nprint(x)\nend\n", "main");
        assert!(s.is_bottom());
        let s = sym_of_first_print("main\ninteger a(3)\nprint(a(1))\nend\n", "main");
        assert!(s.is_bottom());
    }

    #[test]
    fn reals_are_bottom() {
        let s = sym_of_first_print("main\nreal r\nr = 1.5\nprint(r)\nend\n", "main");
        assert!(s.is_bottom());
        // Comparisons against reals too.
        let s = sym_of_first_print("main\nreal r\nprint(r < 2.0)\nend\n", "main");
        assert!(s.is_bottom());
    }

    #[test]
    fn equal_branch_values_merge() {
        let src = "proc f(a, c)\nif c then\nx = a + 1\nelse\nx = a + 1\nend\nprint(x)\nend\nmain\ncall f(1, 2)\nend\n";
        let s = sym_of_first_print(src, "f");
        let e = s.as_expr().expect("merged");
        assert!(e.support().contains(&Slot::Formal(0)));
    }

    #[test]
    fn unequal_branch_values_are_bottom() {
        let src = "proc f(a, c)\nif c then\nx = a + 1\nelse\nx = a + 2\nend\nprint(x)\nend\nmain\ncall f(1, 2)\nend\n";
        assert!(sym_of_first_print(src, "f").is_bottom());
    }

    #[test]
    fn loop_carried_values_are_bottom() {
        let src = "main\ns = 0\ndo i = 1, 3\ns = s + i\nend\nprint(s)\nend\n";
        assert!(sym_of_first_print(src, "main").is_bottom());
    }

    #[test]
    fn value_unmodified_through_loop_stays_symbolic() {
        let src =
            "proc f(n)\ns = 0\ndo i = 1, 10\ns = s + 1\nend\nprint(n)\nend\nmain\ncall f(4)\nend\n";
        let s = sym_of_first_print(src, "f");
        assert_eq!(s.as_expr().and_then(SymExpr::as_var), Some(Slot::Formal(0)));
    }

    #[test]
    fn calls_kill_values_without_return_info() {
        let src = "global g\nproc touch()\ng = 1\nend\nproc f()\ng = 5\ncall touch()\nprint(g)\nend\nmain\ncall f()\nend\n";
        assert!(sym_of_first_print(src, "f").is_bottom());
    }

    #[test]
    fn value_before_call_is_still_constant() {
        let src = "global g\nproc touch()\ng = 1\nend\nproc f()\ng = 5\nprint(g)\ncall touch()\nend\nmain\ncall f()\nend\n";
        let s = sym_of_first_print(src, "f");
        assert_eq!(s.as_const(), Some(5));
    }

    #[test]
    fn function_results_bottom_without_return_info() {
        let src = "func g(x)\nreturn 3\nend\nmain\ny = g(1)\nprint(y)\nend\n";
        assert!(sym_of_first_print(src, "main").is_bottom());
    }

    #[test]
    fn custom_call_symbolics_applied() {
        // A provider that claims every touched slot becomes 42.
        struct FortyTwo;
        impl CallSymbolics for FortyTwo {
            fn slot_after_call(
                &self,
                _c: ProcId,
                _s: Slot,
                _a: &dyn Fn(u32) -> Sym,
                _g: &dyn Fn(GlobalId) -> Sym,
            ) -> Sym {
                Sym::constant(42)
            }
        }
        let src = "func g(x)\nreturn 3\nend\nmain\ny = g(1)\nprint(y)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let proc = program.proc(program.main);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let map = symbolic_eval(proc, &ssa, &FortyTwo);
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Print { value } = instr {
                    assert_eq!(map.of_operand(*value).as_const(), Some(42));
                    return;
                }
            }
        }
        panic!("no print");
    }

    #[test]
    fn division_symbolics() {
        let s = sym_of_first_print("proc f(a)\nprint(a / 2)\nend\nmain\ncall f(8)\nend\n", "f");
        let e = s.as_expr().expect("division is representable");
        assert_eq!(e.eval(&|_| Some(9)), Some(4));
        // Constant division folds.
        let s = sym_of_first_print("main\nx = 7\nprint(x / 2)\nend\n", "main");
        assert_eq!(s.as_const(), Some(3));
        // Division by zero constant is ⊥.
        let s = sym_of_first_print("main\nx = 7\nz = 0\nprint(x / z)\nend\n", "main");
        assert!(s.is_bottom());
    }

    #[test]
    fn gated_phi_builds_gamma_values() {
        // Without gating the phi is ⊥; with gating it is a γ over `c`.
        let src = "proc f(a, c)\nif c then\nx = a + 1\nelse\nx = 7\nend\nprint(x)\nend\nmain\ncall f(1, 2)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let pid = program.proc_by_name("f").unwrap();
        let proc = program.proc(pid);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);

        let plain = symbolic_eval(proc, &ssa, &NoCallSymbolics);
        let gated = crate::symeval::symbolic_eval_with(
            proc,
            &ssa,
            &NoCallSymbolics,
            SymEvalOptions { gated_phis: true },
        );
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Print { value } = instr {
                    assert!(plain.of_operand(*value).is_bottom());
                    let sym = gated.of_operand(*value);
                    let e = sym.as_expr().expect("gated value");
                    // c ≠ 0 selects a + 1; c = 0 selects 7.
                    let env = |s: Slot| match s {
                        Slot::Formal(0) => Some(4i64),
                        Slot::Formal(1) => Some(1),
                        _ => None,
                    };
                    assert_eq!(e.eval(&env), Some(5));
                    let env0 = |s: Slot| match s {
                        Slot::Formal(0) => Some(4i64),
                        Slot::Formal(1) => Some(0),
                        _ => None,
                    };
                    assert_eq!(e.eval(&env0), Some(7));
                    return;
                }
            }
        }
        panic!("no print");
    }

    #[test]
    fn gated_phi_skips_loops() {
        // Loop-carried phis must stay ⊥ even with gating enabled.
        let src = "main\ns = 0\ndo i = 1, 3\ns = s + i\nend\nprint(s)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let proc = program.proc(program.main);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let gated = crate::symeval::symbolic_eval_with(
            proc,
            &ssa,
            &NoCallSymbolics,
            SymEvalOptions { gated_phis: true },
        );
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Print { value } = instr {
                    assert!(gated.of_operand(*value).is_bottom());
                    return;
                }
            }
        }
        panic!("no print");
    }

    #[test]
    fn mul_zero_absorbs_bottom() {
        let s = sym_of_first_print("main\nread(x)\nprint(x * 0)\nend\n", "main");
        assert_eq!(s.as_const(), Some(0));
    }

    #[test]
    fn exhausted_budget_degrades_to_bottom_not_panic() {
        let src = "main\nx = 2\ny = x * 3 + 4\nprint(y)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let proc = program.proc(program.main);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let budget = Budget::with_fuel(0);
        let map = symbolic_eval_budgeted(
            proc,
            &ssa,
            &NoCallSymbolics,
            SymEvalOptions::default(),
            &budget,
        );
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Print { value } = instr {
                    assert!(map.of_operand(*value).is_bottom());
                }
            }
        }
        assert!(budget.is_exhausted());
        let report = budget.report();
        assert!(report.degradations[&crate::budget::Phase::SymEval] > 0);
    }

    #[test]
    fn partial_budget_is_sound_vs_full_run() {
        // A degraded run may only replace values with ⊥, never change them.
        let src = "main\na = 1\nb = a + 1\nc = b * 2\nd = c - 3\nprint(d)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let proc = program.proc(program.main);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let full = symbolic_eval(proc, &ssa, &NoCallSymbolics);
        for fuel in 0..16 {
            let map = symbolic_eval_budgeted(
                proc,
                &ssa,
                &NoCallSymbolics,
                SymEvalOptions::default(),
                &Budget::with_fuel(fuel),
            );
            for i in 0..map.len() {
                let name = SsaName(i as u32);
                let degraded = map.of(name);
                if !degraded.is_bottom() {
                    assert_eq!(degraded, full.of(name), "fuel {fuel}, name {i}");
                }
            }
        }
    }
}
