//! Array-subscript classification — the dependence-analysis motivation.
//!
//! The paper's introduction leads with Shen, Li & Yew's finding that with
//! interprocedural constants "approximately 50 percent of the subscripts
//! which had previously been considered nonlinear were found to be
//! linear", which matters because "many dependence analyzers are
//! incapable of analyzing nonlinear subscripts".
//!
//! This module classifies every `Load`/`Store` subscript as
//!
//! * **constant** — a compile-time constant under the given entry facts,
//! * **linear** — an affine function `c₀ + Σ cᵢ·ivᵢ` of simple induction
//!   variables with *constant* coefficients, or
//! * **nonlinear** — anything else (unknown coefficients included, since
//!   a dependence test cannot use them).
//!
//! Induction variables are recognized structurally on SSA: a phi `n` one
//! of whose arguments is `n ± c` for a constant `c` (exactly what `do`
//! loops lower to). Because coefficients are resolved through SCCP with a
//! caller-supplied entry environment, seeding the environment with
//! interprocedural `CONSTANTS` turns unknown strides into constants —
//! reproducing the Shen–Li–Yew effect.

use crate::lattice::LatticeVal;
use crate::sccp::SccpResult;
use ipcp_ir::Procedure;
use ipcp_lang::ast::{BinOp, UnOp};
use ipcp_ssa::{SsaInstr, SsaName, SsaOperand, SsaProc};
use std::collections::{BTreeMap, HashSet};

/// Classification of one subscript expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriptClass {
    /// A compile-time constant index.
    Constant(i64),
    /// Affine in ≥1 induction variables with constant coefficients.
    Linear {
        /// Constant term.
        offset: i64,
        /// Induction-variable phi → coefficient.
        coefficients: BTreeMap<SsaName, i64>,
    },
    /// Not analyzable as affine.
    Nonlinear,
}

/// Aggregate counts over a procedure or program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscriptCounts {
    /// Constant subscripts.
    pub constant: usize,
    /// Linear (affine, constant-coefficient) subscripts.
    pub linear: usize,
    /// Nonlinear subscripts.
    pub nonlinear: usize,
}

impl SubscriptCounts {
    /// Total subscripts classified.
    pub fn total(&self) -> usize {
        self.constant + self.linear + self.nonlinear
    }

    /// Merges another count into this one.
    pub fn absorb(&mut self, other: SubscriptCounts) {
        self.constant += other.constant;
        self.linear += other.linear;
        self.nonlinear += other.nonlinear;
    }
}

/// Classifies every array subscript in `proc` (reachable code only).
pub fn classify_subscripts(
    proc: &Procedure,
    ssa: &SsaProc,
    sccp: &SccpResult,
) -> Vec<SubscriptClass> {
    let _ = proc;
    let ivs = induction_phis(ssa, sccp);
    let mut out = Vec::new();
    for (b, blk) in ssa.rpo_blocks() {
        if !sccp.executable[b.index()] {
            continue;
        }
        for instr in &blk.instrs {
            let index = match instr {
                SsaInstr::Load { index, .. } => *index,
                SsaInstr::Store { index, .. } => *index,
                _ => continue,
            };
            out.push(classify_operand(index, ssa, sccp, &ivs, 0));
        }
    }
    out
}

/// Counts [`classify_subscripts`] by class.
pub fn count_subscripts(proc: &Procedure, ssa: &SsaProc, sccp: &SccpResult) -> SubscriptCounts {
    let mut counts = SubscriptCounts::default();
    for class in classify_subscripts(proc, ssa, sccp) {
        match class {
            SubscriptClass::Constant(_) => counts.constant += 1,
            SubscriptClass::Linear { .. } => counts.linear += 1,
            SubscriptClass::Nonlinear => counts.nonlinear += 1,
        }
    }
    counts
}

/// Phi names of the form `n = φ(init, n ± c)` for constant `c` — the
/// shape every `do` loop lowers to.
fn induction_phis(ssa: &SsaProc, sccp: &SccpResult) -> HashSet<SsaName> {
    let mut ivs = HashSet::new();
    for (_, blk) in ssa.rpo_blocks() {
        for phi in &blk.phis {
            if phi.args.len() != 2 {
                continue;
            }
            let is_step = |arg: SsaName| -> bool {
                match ssa.def(arg).site {
                    ipcp_ssa::DefSite::Instr { block, index } => {
                        let Some(def_blk) = ssa.block(block) else {
                            return false;
                        };
                        match &def_blk.instrs[index] {
                            SsaInstr::Binary {
                                op: BinOp::Add | BinOp::Sub,
                                lhs,
                                rhs,
                                ..
                            } => {
                                let uses_phi = |o: &SsaOperand| o.as_name() == Some(phi.dst);
                                let is_const = |o: &SsaOperand| {
                                    matches!(sccp.of_operand(*o), LatticeVal::Const(_))
                                };
                                (uses_phi(lhs) && is_const(rhs)) || (uses_phi(rhs) && is_const(lhs))
                            }
                            _ => false,
                        }
                    }
                    _ => false,
                }
            };
            if phi.args.iter().any(|&(_, a)| is_step(a)) {
                ivs.insert(phi.dst);
            }
        }
    }
    ivs
}

const MAX_DEPTH: u32 = 24;

fn classify_operand(
    op: SsaOperand,
    ssa: &SsaProc,
    sccp: &SccpResult,
    ivs: &HashSet<SsaName>,
    depth: u32,
) -> SubscriptClass {
    // Constants first: this is where interprocedural facts enter.
    if let LatticeVal::Const(c) = sccp.of_operand(op) {
        return SubscriptClass::Constant(c);
    }
    let Some(name) = op.as_name() else {
        return SubscriptClass::Nonlinear;
    };
    classify_name(name, ssa, sccp, ivs, depth)
}

fn classify_name(
    name: SsaName,
    ssa: &SsaProc,
    sccp: &SccpResult,
    ivs: &HashSet<SsaName>,
    depth: u32,
) -> SubscriptClass {
    if depth > MAX_DEPTH {
        return SubscriptClass::Nonlinear;
    }
    if let LatticeVal::Const(c) = sccp.values[name.index()] {
        return SubscriptClass::Constant(c);
    }
    if ivs.contains(&name) {
        let mut coefficients = BTreeMap::new();
        coefficients.insert(name, 1i64);
        return SubscriptClass::Linear {
            offset: 0,
            coefficients,
        };
    }
    match ssa.def(name).site {
        ipcp_ssa::DefSite::Instr { block, index } => {
            let Some(blk) = ssa.block(block) else {
                return SubscriptClass::Nonlinear;
            };
            match &blk.instrs[index] {
                SsaInstr::Copy { src, .. } => classify_operand(*src, ssa, sccp, ivs, depth + 1),
                SsaInstr::Unary {
                    op: UnOp::Neg, src, ..
                } => scale(classify_operand(*src, ssa, sccp, ivs, depth + 1), -1),
                SsaInstr::Binary { op, lhs, rhs, .. } => {
                    let l = classify_operand(*lhs, ssa, sccp, ivs, depth + 1);
                    let r = classify_operand(*rhs, ssa, sccp, ivs, depth + 1);
                    combine(*op, l, r)
                }
                _ => SubscriptClass::Nonlinear,
            }
        }
        _ => SubscriptClass::Nonlinear,
    }
}

fn scale(class: SubscriptClass, factor: i64) -> SubscriptClass {
    match class {
        SubscriptClass::Constant(c) => SubscriptClass::Constant(c.wrapping_mul(factor)),
        SubscriptClass::Linear {
            offset,
            coefficients,
        } => SubscriptClass::Linear {
            offset: offset.wrapping_mul(factor),
            coefficients: coefficients
                .into_iter()
                .map(|(iv, c)| (iv, c.wrapping_mul(factor)))
                .collect(),
        },
        SubscriptClass::Nonlinear => SubscriptClass::Nonlinear,
    }
}

fn combine(op: BinOp, l: SubscriptClass, r: SubscriptClass) -> SubscriptClass {
    use SubscriptClass::*;
    match op {
        BinOp::Add | BinOp::Sub => {
            let r = if op == BinOp::Sub { scale(r, -1) } else { r };
            match (l, r) {
                (Nonlinear, _) | (_, Nonlinear) => Nonlinear,
                (Constant(a), Constant(b)) => Constant(a.wrapping_add(b)),
                (
                    Constant(a),
                    Linear {
                        offset,
                        coefficients,
                    },
                )
                | (
                    Linear {
                        offset,
                        coefficients,
                    },
                    Constant(a),
                ) => Linear {
                    offset: offset.wrapping_add(a),
                    coefficients,
                },
                (
                    Linear {
                        offset: o1,
                        coefficients: c1,
                    },
                    Linear {
                        offset: o2,
                        coefficients: c2,
                    },
                ) => {
                    let mut coefficients = c1;
                    for (iv, c) in c2 {
                        let e = coefficients.entry(iv).or_insert(0);
                        *e = e.wrapping_add(c);
                    }
                    coefficients.retain(|_, c| *c != 0);
                    if coefficients.is_empty() {
                        Constant(o1.wrapping_add(o2))
                    } else {
                        Linear {
                            offset: o1.wrapping_add(o2),
                            coefficients,
                        }
                    }
                }
            }
        }
        BinOp::Mul => match (l, r) {
            (Constant(a), Constant(b)) => Constant(a.wrapping_mul(b)),
            (Constant(a), other) | (other, Constant(a)) => scale(other, a),
            _ => Nonlinear,
        },
        _ => Nonlinear,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sccp::{bottom_entry, sccp, PessimisticCalls, SccpConfig};
    use ipcp_ir::compile_to_ir;
    use ipcp_ssa::{build_ssa, WorstCaseKills};

    fn counts(src: &str, proc_name: &str, seeds: &[(&str, i64)]) -> SubscriptCounts {
        let program = compile_to_ir(src).expect("compiles");
        let pid = program.proc_by_name(proc_name).expect("proc");
        let proc = program.proc(pid);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let env = |v: ipcp_ir::VarId| -> LatticeVal {
            for (name, value) in seeds {
                if proc.var(v).name == *name {
                    return LatticeVal::Const(*value);
                }
            }
            bottom_entry(v)
        };
        let result = sccp(
            proc,
            &ssa,
            &SccpConfig {
                entry_env: &env,
                calls: &PessimisticCalls,
            },
        );
        count_subscripts(proc, &ssa, &result)
    }

    #[test]
    fn constant_subscripts() {
        let c = counts(
            "main\ninteger a(9)\na(3) = 1\nx = a(2 + 2)\nend\n",
            "main",
            &[],
        );
        assert_eq!(
            c,
            SubscriptCounts {
                constant: 2,
                linear: 0,
                nonlinear: 0
            }
        );
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn loop_index_is_linear() {
        let src = "main\ninteger a(10)\ndo i = 1, 10\na(i) = i\nend\nend\n";
        let c = counts(src, "main", &[]);
        assert_eq!(
            c,
            SubscriptCounts {
                constant: 0,
                linear: 1,
                nonlinear: 0
            }
        );
    }

    #[test]
    fn affine_of_loop_index_is_linear() {
        let src =
            "main\ninteger a(40)\ndo i = 1, 10\na(3 * i + 2) = i\nx = a(2 * i - 1)\nend\nend\n";
        let c = counts(src, "main", &[]);
        assert_eq!(c.linear, 2);
        assert_eq!(c.nonlinear, 0);
    }

    #[test]
    fn product_of_indices_is_nonlinear() {
        let src = "main\ninteger a(100)\ndo i = 1, 9\ndo j = 1, 9\na(i * j) = 1\nend\nend\nend\n";
        let c = counts(src, "main", &[]);
        assert_eq!(c.nonlinear, 1);
    }

    #[test]
    fn multi_iv_affine_is_linear() {
        let src = "main\ninteger a(100)\ndo i = 1, 9\ndo j = 1, 9\na(10 * i + j - 10) = 1\nend\nend\nend\n";
        let c = counts(src, "main", &[]);
        assert_eq!(
            c,
            SubscriptCounts {
                constant: 0,
                linear: 1,
                nonlinear: 0
            }
        );
    }

    #[test]
    fn unknown_stride_is_nonlinear_until_seeded() {
        // The Shen–Li–Yew effect: a(stride * i) with formal stride.
        let src = "proc f(stride)\ninteger a(100)\ndo i = 1, 10\na(stride * i) = 1\nend\nend\nmain\ncall f(7)\nend\n";
        let without = counts(src, "f", &[]);
        assert_eq!(
            without,
            SubscriptCounts {
                constant: 0,
                linear: 0,
                nonlinear: 1
            }
        );
        let with = counts(src, "f", &[("stride", 7)]);
        assert_eq!(
            with,
            SubscriptCounts {
                constant: 0,
                linear: 1,
                nonlinear: 0
            }
        );
    }

    #[test]
    fn read_values_are_nonlinear() {
        let src = "main\ninteger a(9)\nread(k)\nx = a(k)\nend\n";
        let c = counts(src, "main", &[]);
        assert_eq!(c.nonlinear, 1);
    }

    #[test]
    fn classification_details() {
        let src = "main\ninteger a(40)\ndo i = 1, 10\na(3 * i + 2) = 1\nend\nend\n";
        let program = compile_to_ir(src).unwrap();
        let proc = program.proc(program.main);
        let ssa = build_ssa(&program, proc, &WorstCaseKills);
        let result = sccp(
            proc,
            &ssa,
            &SccpConfig {
                entry_env: &bottom_entry,
                calls: &PessimisticCalls,
            },
        );
        let classes = classify_subscripts(proc, &ssa, &result);
        assert_eq!(classes.len(), 1);
        match &classes[0] {
            SubscriptClass::Linear {
                offset,
                coefficients,
            } => {
                assert_eq!(*offset, 2);
                assert_eq!(coefficients.len(), 1);
                assert_eq!(*coefficients.values().next().unwrap(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn counts_absorb() {
        let mut a = SubscriptCounts {
            constant: 1,
            linear: 2,
            nonlinear: 3,
        };
        a.absorb(SubscriptCounts {
            constant: 4,
            linear: 5,
            nonlinear: 6,
        });
        assert_eq!(
            a,
            SubscriptCounts {
                constant: 5,
                linear: 7,
                nonlinear: 9
            }
        );
    }
}
