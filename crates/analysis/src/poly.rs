//! Multivariate integer polynomials over procedure entry slots.
//!
//! These are the canonical form behind the paper's *polynomial parameter
//! jump function*: an actual parameter expressible as a polynomial in the
//! caller's entry values (formals and globals) is transmitted
//! symbolically. Arithmetic is wrapping `i64`, matching the language
//! semantics, so folding a polynomial at a call site produces exactly the
//! value the program would compute.
//!
//! Sizes are bounded ([`MAX_TERMS`], [`MAX_DEGREE`]): operations that
//! would exceed the bounds return `None`, and the symbolic layer falls
//! back to an opaque expression node.

use crate::modref::Slot;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Maximum number of terms a polynomial may hold.
pub const MAX_TERMS: usize = 32;
/// Maximum total degree of any monomial.
pub const MAX_DEGREE: u32 = 8;

/// Size bounds for polynomial arithmetic. The defaults are the module
/// constants; fuel-governed callers tighten them so symbolic work
/// shrinks as the budget runs down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyCaps {
    /// Maximum number of terms a result may hold.
    pub max_terms: usize,
    /// Maximum total degree of any monomial in a result.
    pub max_degree: u32,
}

impl Default for PolyCaps {
    fn default() -> Self {
        PolyCaps {
            max_terms: MAX_TERMS,
            max_degree: MAX_DEGREE,
        }
    }
}

/// A power product of slots, e.g. `arg0^2 * g3`. The empty monomial is
/// the constant term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    /// `(slot, exponent)` pairs, sorted by slot, exponents ≥ 1.
    factors: Vec<(Slot, u32)>,
}

impl Monomial {
    /// The constant monomial (degree 0).
    pub fn unit() -> Self {
        Monomial::default()
    }

    /// The monomial `slot^1`.
    pub fn var(slot: Slot) -> Self {
        Monomial {
            factors: vec![(slot, 1)],
        }
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|&(_, e)| e).sum()
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut factors: BTreeMap<Slot, u32> = self.factors.iter().copied().collect();
        for &(s, e) in &other.factors {
            *factors.entry(s).or_insert(0) += e;
        }
        Monomial {
            factors: factors.into_iter().collect(),
        }
    }

    /// The factors, sorted by slot.
    pub fn factors(&self) -> &[(Slot, u32)] {
        &self.factors
    }

    /// Evaluates with wrapping arithmetic; `None` if any slot is unmapped.
    pub fn eval(&self, env: &dyn Fn(Slot) -> Option<i64>) -> Option<i64> {
        let mut acc = 1i64;
        for &(s, e) in &self.factors {
            let v = env(s)?;
            for _ in 0..e {
                acc = acc.wrapping_mul(v);
            }
        }
        Some(acc)
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return f.write_str("1");
        }
        for (i, (s, e)) in self.factors.iter().enumerate() {
            if i > 0 {
                f.write_str("*")?;
            }
            if *e == 1 {
                write!(f, "{s}")?;
            } else {
                write!(f, "{s}^{e}")?;
            }
        }
        Ok(())
    }
}

/// A multivariate polynomial with `i64` coefficients (wrapping).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    /// Terms with non-zero coefficients only.
    terms: BTreeMap<Monomial, i64>,
}

impl Poly {
    /// The constant polynomial `c`.
    pub fn constant(c: i64) -> Poly {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(Monomial::unit(), c);
        }
        Poly { terms }
    }

    /// The polynomial `slot`.
    pub fn var(slot: Slot) -> Poly {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::var(slot), 1);
        Poly { terms }
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, if this polynomial is constant.
    pub fn as_const(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 => {
                let (m, &c) = self.terms.iter().next().expect("one term");
                if m.degree() == 0 {
                    Some(c)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The single slot, if this polynomial is exactly `1 * slot` — the
    /// shape the *pass-through parameter jump function* transmits.
    pub fn as_var(&self) -> Option<Slot> {
        if self.terms.len() != 1 {
            return None;
        }
        let (m, &c) = self.terms.iter().next().expect("one term");
        if c == 1 && m.factors().len() == 1 && m.factors()[0].1 == 1 {
            Some(m.factors()[0].0)
        } else {
            None
        }
    }

    /// Number of terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Total degree (0 for constants and zero).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// The slots this polynomial depends on (the jump function's
    /// *support*).
    pub fn support(&self) -> BTreeSet<Slot> {
        let mut s = BTreeSet::new();
        for m in self.terms.keys() {
            for &(slot, _) in m.factors() {
                s.insert(slot);
            }
        }
        s
    }

    /// Sum, or `None` if the result would exceed [`MAX_TERMS`].
    pub fn checked_add(&self, other: &Poly) -> Option<Poly> {
        self.checked_add_with(other, &PolyCaps::default())
    }

    /// Sum under explicit size bounds.
    pub fn checked_add_with(&self, other: &Poly, caps: &PolyCaps) -> Option<Poly> {
        let mut terms = self.terms.clone();
        for (m, &c) in &other.terms {
            match terms.entry(m.clone()) {
                Entry::Vacant(e) => {
                    e.insert(c);
                }
                Entry::Occupied(mut e) => {
                    let v = e.get().wrapping_add(c);
                    if v == 0 {
                        e.remove();
                    } else {
                        *e.get_mut() = v;
                    }
                }
            }
        }
        if terms.len() > caps.max_terms {
            None
        } else {
            Some(Poly { terms })
        }
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> Poly {
        Poly {
            terms: self
                .terms
                .iter()
                .map(|(m, &c)| (m.clone(), c.wrapping_neg()))
                .collect(),
        }
    }

    /// Difference, or `None` on overflow of the term bound.
    pub fn checked_sub(&self, other: &Poly) -> Option<Poly> {
        self.checked_add(&other.neg())
    }

    /// Difference under explicit size bounds.
    pub fn checked_sub_with(&self, other: &Poly, caps: &PolyCaps) -> Option<Poly> {
        self.checked_add_with(&other.neg(), caps)
    }

    /// Product, or `None` if the result would exceed [`MAX_TERMS`] or
    /// [`MAX_DEGREE`].
    pub fn checked_mul(&self, other: &Poly) -> Option<Poly> {
        self.checked_mul_with(other, &PolyCaps::default())
    }

    /// Product under explicit size bounds.
    pub fn checked_mul_with(&self, other: &Poly, caps: &PolyCaps) -> Option<Poly> {
        let mut terms: BTreeMap<Monomial, i64> = BTreeMap::new();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &other.terms {
                let m = ma.mul(mb);
                if m.degree() > caps.max_degree {
                    return None;
                }
                let c = ca.wrapping_mul(cb);
                match terms.entry(m) {
                    Entry::Vacant(e) => {
                        e.insert(c);
                    }
                    Entry::Occupied(mut e) => {
                        let v = e.get().wrapping_add(c);
                        if v == 0 {
                            e.remove();
                        } else {
                            *e.get_mut() = v;
                        }
                    }
                }
                if terms.len() > caps.max_terms {
                    return None;
                }
            }
        }
        Some(Poly { terms })
    }

    /// Evaluates with wrapping arithmetic; `None` if any needed slot is
    /// unmapped.
    pub fn eval(&self, env: &dyn Fn(Slot) -> Option<i64>) -> Option<i64> {
        let mut acc = 0i64;
        for (m, &c) in &self.terms {
            acc = acc.wrapping_add(c.wrapping_mul(m.eval(env)?));
        }
        Some(acc)
    }

    /// Iterates over `(monomial, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, i64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(" + ")?;
            }
            if m.degree() == 0 {
                write!(f, "{c}")?;
            } else if *c == 1 {
                write!(f, "{m}")?;
            } else {
                write!(f, "{c}*{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::GlobalId;

    fn x() -> Poly {
        Poly::var(Slot::Formal(0))
    }

    fn y() -> Poly {
        Poly::var(Slot::Global(GlobalId(0)))
    }

    #[test]
    fn constants() {
        assert_eq!(Poly::constant(0), Poly::default());
        assert!(Poly::constant(0).is_zero());
        assert_eq!(Poly::constant(5).as_const(), Some(5));
        assert_eq!(Poly::constant(0).as_const(), Some(0));
        assert_eq!(x().as_const(), None);
    }

    #[test]
    fn pass_through_shape() {
        assert_eq!(x().as_var(), Some(Slot::Formal(0)));
        assert_eq!(Poly::constant(3).as_var(), None);
        let two_x = x().checked_add(&x()).unwrap();
        assert_eq!(two_x.as_var(), None, "2*x is not a pass-through");
        let x_plus_1 = x().checked_add(&Poly::constant(1)).unwrap();
        assert_eq!(x_plus_1.as_var(), None);
    }

    #[test]
    fn ring_identities() {
        let p = x()
            .checked_mul(&y())
            .unwrap()
            .checked_add(&Poly::constant(2))
            .unwrap();
        // p + 0 = p; p * 1 = p; p * 0 = 0; p - p = 0.
        assert_eq!(p.checked_add(&Poly::constant(0)).unwrap(), p);
        assert_eq!(p.checked_mul(&Poly::constant(1)).unwrap(), p);
        assert!(p.checked_mul(&Poly::constant(0)).unwrap().is_zero());
        assert!(p.checked_sub(&p).unwrap().is_zero());
        // Commutativity.
        assert_eq!(x().checked_add(&y()), y().checked_add(&x()));
        assert_eq!(x().checked_mul(&y()), y().checked_mul(&x()));
    }

    #[test]
    fn distribution() {
        // (x + 1) * (x - 1) = x^2 - 1
        let a = x().checked_add(&Poly::constant(1)).unwrap();
        let b = x().checked_sub(&Poly::constant(1)).unwrap();
        let prod = a.checked_mul(&b).unwrap();
        let x2 = x().checked_mul(&x()).unwrap();
        let expect = x2.checked_sub(&Poly::constant(1)).unwrap();
        assert_eq!(prod, expect);
        assert_eq!(prod.degree(), 2);
    }

    #[test]
    fn eval_wrapping() {
        // 2*x + 3 at x = i64::MAX wraps.
        let p = x()
            .checked_mul(&Poly::constant(2))
            .unwrap()
            .checked_add(&Poly::constant(3))
            .unwrap();
        let env = |s: Slot| {
            if s == Slot::Formal(0) {
                Some(i64::MAX)
            } else {
                None
            }
        };
        let expect = i64::MAX.wrapping_mul(2).wrapping_add(3);
        assert_eq!(p.eval(&env), Some(expect));
    }

    #[test]
    fn eval_missing_slot() {
        let p = x().checked_add(&y()).unwrap();
        let env = |s: Slot| if s == Slot::Formal(0) { Some(1) } else { None };
        assert_eq!(p.eval(&env), None);
        assert_eq!(Poly::constant(7).eval(&|_| None), Some(7));
    }

    #[test]
    fn support_tracks_slots() {
        let p = x()
            .checked_mul(&y())
            .unwrap()
            .checked_add(&Poly::constant(4))
            .unwrap();
        let s = p.support();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&Slot::Formal(0)));
        assert!(s.contains(&Slot::Global(GlobalId(0))));
        assert!(Poly::constant(1).support().is_empty());
    }

    #[test]
    fn cancellation_removes_terms() {
        let p = x().checked_add(&Poly::constant(1)).unwrap();
        let q = x().neg();
        let sum = p.checked_add(&q).unwrap();
        assert_eq!(sum.as_const(), Some(1));
        assert_eq!(sum.term_count(), 1);
    }

    #[test]
    fn wrapping_agrees_with_interpreter_on_min_edges() {
        use ipcp_lang::ast::BinOp;
        use ipcp_lang::interp::eval_binop_int;
        // Polynomial arithmetic is wrapping i64, exactly like the runtime:
        // any disagreement here would let the Poly jump functions prove a
        // "constant" the program never computes.
        let min = Poly::constant(i64::MIN);
        let cases = [
            (BinOp::Mul, i64::MIN, -1),
            (BinOp::Add, i64::MIN, i64::MIN),
            (BinOp::Sub, 0, i64::MIN),
            (BinOp::Mul, i64::MAX, i64::MAX),
        ];
        for (op, a, b) in cases {
            let pa = Poly::constant(a);
            let pb = Poly::constant(b);
            let got = match op {
                BinOp::Add => pa.checked_add(&pb),
                BinOp::Sub => pa.checked_sub(&pb),
                BinOp::Mul => pa.checked_mul(&pb),
                _ => unreachable!(),
            }
            .unwrap();
            let want = eval_binop_int(op, a, b).unwrap();
            assert_eq!(got.as_const(), Some(want), "{op:?} {a} {b}");
        }
        // Negation of i64::MIN wraps back to i64::MIN.
        assert_eq!(min.neg().as_const(), Some(i64::MIN));
        // Evaluation at i64::MIN wraps too: (-1) * x at x = MIN is MIN.
        let p = x().checked_mul(&Poly::constant(-1)).unwrap();
        let env = |s: Slot| (s == Slot::Formal(0)).then_some(i64::MIN);
        assert_eq!(p.eval(&env), Some(i64::MIN));
    }

    #[test]
    fn division_is_not_a_ring_op() {
        // Poly deliberately has no division: `/` and `%` only enter symbolic
        // jump functions through guarded constant folding (see symexpr), so
        // a divide whose RHS could be zero is never folded away.
        use ipcp_lang::ast::BinOp;
        use ipcp_lang::interp::eval_binop_int;
        assert!(eval_binop_int(BinOp::Div, 1, 0).is_err());
        assert!(eval_binop_int(BinOp::Rem, 1, 0).is_err());
        assert_eq!(eval_binop_int(BinOp::Div, i64::MIN, -1), Ok(i64::MIN));
        assert_eq!(eval_binop_int(BinOp::Rem, i64::MIN, -1), Ok(0));
        assert_eq!(eval_binop_int(BinOp::Div, -7, 2), Ok(-3));
        assert_eq!(eval_binop_int(BinOp::Rem, -7, 2), Ok(-1));
    }

    #[test]
    fn degree_cap_enforced() {
        // x^(MAX_DEGREE+1) fails.
        let mut p = x();
        let mut ok = true;
        for _ in 0..MAX_DEGREE {
            match p.checked_mul(&x()) {
                Some(q) => p = q,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        assert!(!ok || p.degree() == MAX_DEGREE);
        assert!(p.checked_mul(&x()).is_none());
    }

    #[test]
    fn term_cap_enforced() {
        // Product of (x0 + 1)(x1 + 1)...(x5 + 1) has 2^6 = 64 terms > MAX.
        let mut p = Poly::constant(1);
        let mut capped = false;
        for i in 0..6 {
            let factor = Poly::var(Slot::Formal(i))
                .checked_add(&Poly::constant(1))
                .unwrap();
            match p.checked_mul(&factor) {
                Some(q) => p = q,
                None => {
                    capped = true;
                    break;
                }
            }
        }
        assert!(capped, "term bound must trigger");
    }

    #[test]
    fn tightened_caps_reject_what_defaults_allow() {
        let tight = PolyCaps {
            max_terms: 1,
            max_degree: 1,
        };
        // x + 1 has two terms: fine by default, rejected under the cap.
        assert!(x().checked_add(&Poly::constant(1)).is_some());
        assert!(x().checked_add_with(&Poly::constant(1), &tight).is_none());
        // x * x has degree 2: fine by default, rejected under the cap.
        assert!(x().checked_mul(&x()).is_some());
        assert!(x().checked_mul_with(&x(), &tight).is_none());
        // Subtraction shares the add path.
        assert!(x().checked_sub_with(&Poly::constant(1), &tight).is_none());
        // Results within the caps still succeed.
        assert_eq!(
            x().checked_mul_with(&Poly::constant(2), &tight)
                .unwrap()
                .term_count(),
            1
        );
    }

    #[test]
    fn display_readable() {
        let p = x()
            .checked_mul(&x())
            .unwrap()
            .checked_mul(&Poly::constant(3))
            .unwrap()
            .checked_add(&y())
            .unwrap()
            .checked_add(&Poly::constant(-2))
            .unwrap();
        let s = p.to_string();
        assert!(s.contains("3*arg0^2"), "{s}");
        assert!(s.contains("g0"), "{s}");
        assert_eq!(Poly::constant(0).to_string(), "0");
        assert_eq!(Monomial::unit().to_string(), "1");
    }
}
