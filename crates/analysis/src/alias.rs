//! Aliasing lint: checks the FORTRAN no-alias rule the analyses assume.
//!
//! FORTRAN 77 (and Minifor, by specification) forbids a procedure from
//! modifying a dummy argument that is aliased to another dummy argument
//! or to a `COMMON` variable the procedure can also access directly.
//! Every analysis in this repository relies on that rule (kill sets treat
//! by-reference formals and globals as independent). This lint reports
//! the two ways a Minifor call can set up such an alias:
//!
//! 1. the same variable passed by reference in two argument positions,
//!    where the callee may modify at least one of them;
//! 2. a global passed by reference to a procedure that (transitively)
//!    references or modifies that same global, where either access path
//!    may write.
//!
//! Calls that merely *read* through both paths are conforming and not
//! reported.

use crate::modref::{ModRefInfo, Slot};
use ipcp_ir::{BlockId, Instr, ProcId, Program, VarKind};
use std::fmt;

/// A detected aliasing violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasViolation {
    /// Procedure containing the offending call.
    pub caller: ProcId,
    /// Block of the call.
    pub block: BlockId,
    /// Instruction index of the call.
    pub index: usize,
    /// The callee.
    pub callee: ProcId,
    /// Description of the alias.
    pub kind: AliasKind,
}

/// The two alias shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AliasKind {
    /// One variable bound by reference to two formal positions.
    DuplicateActual {
        /// Name of the variable passed twice.
        var: String,
        /// The two argument positions.
        positions: (usize, usize),
    },
    /// A global bound by reference to a formal of a procedure that also
    /// accesses the global directly.
    GlobalArgument {
        /// Name of the global.
        var: String,
        /// The argument position it is passed at.
        position: usize,
    },
}

impl fmt::Display for AliasKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AliasKind::DuplicateActual { var, positions } => write!(
                f,
                "`{var}` passed by reference at argument positions {} and {} with a modification",
                positions.0, positions.1
            ),
            AliasKind::GlobalArgument { var, position } => write!(
                f,
                "global `{var}` passed by reference at position {position} to a procedure that also accesses it, with a modification"
            ),
        }
    }
}

/// Scans the whole program for aliasing violations.
pub fn check_aliasing(program: &Program, modref: &ModRefInfo) -> Vec<AliasViolation> {
    let mut out = Vec::new();
    for pid in program.proc_ids() {
        let proc = program.proc(pid);
        for b in proc.block_ids() {
            for (i, instr) in proc.block(b).instrs.iter().enumerate() {
                let Instr::Call { callee, args, .. } = instr else {
                    continue;
                };
                let mods = modref.mods(*callee);
                let refs = modref.refs(*callee);

                // 1. Same variable in two by-ref positions.
                for (k1, a1) in args.iter().enumerate() {
                    if !a1.by_ref {
                        continue;
                    }
                    let Some(v1) = a1.value.as_var() else {
                        continue;
                    };
                    for (k2, a2) in args.iter().enumerate().skip(k1 + 1) {
                        if !a2.by_ref || a2.value.as_var() != Some(v1) {
                            continue;
                        }
                        let modified = mods.contains(&Slot::Formal(k1 as u32))
                            || mods.contains(&Slot::Formal(k2 as u32));
                        if modified {
                            out.push(AliasViolation {
                                caller: pid,
                                block: b,
                                index: i,
                                callee: *callee,
                                kind: AliasKind::DuplicateActual {
                                    var: proc.var(v1).name.clone(),
                                    positions: (k1, k2),
                                },
                            });
                        }
                    }
                }

                // 2. A global passed by reference to a procedure that also
                //    touches it, with a write through either path.
                for (k, arg) in args.iter().enumerate() {
                    if !arg.by_ref {
                        continue;
                    }
                    let Some(v) = arg.value.as_var() else {
                        continue;
                    };
                    let VarKind::Global(g) = proc.var(v).kind else {
                        continue;
                    };
                    let touches =
                        mods.contains(&Slot::Global(g)) || refs.contains(&Slot::Global(g));
                    if !touches {
                        continue;
                    }
                    let writes =
                        mods.contains(&Slot::Formal(k as u32)) || mods.contains(&Slot::Global(g));
                    if writes {
                        out.push(AliasViolation {
                            caller: pid,
                            block: b,
                            index: i,
                            callee: *callee,
                            kind: AliasKind::GlobalArgument {
                                var: proc.var(v).name.clone(),
                                position: k,
                            },
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::modref::compute_modref;
    use ipcp_ir::compile_to_ir;

    fn lint(src: &str) -> Vec<AliasViolation> {
        let program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        check_aliasing(&program, &modref)
    }

    #[test]
    fn clean_program_passes() {
        let v = lint("proc f(a, b)\na = b + 1\nend\nmain\ncall f(x, y)\nend\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn duplicate_actual_with_write_flagged() {
        let v = lint("proc f(a, b)\na = b + 1\nend\nmain\ncall f(x, x)\nend\n");
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0].kind,
            AliasKind::DuplicateActual {
                positions: (0, 1),
                ..
            }
        ));
        assert!(!v[0].kind.to_string().is_empty());
    }

    #[test]
    fn duplicate_actual_read_only_is_fine() {
        let v = lint("proc f(a, b)\nprint(a + b)\nend\nmain\ncall f(x, x)\nend\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn global_argument_with_write_flagged() {
        // f writes its formal, which aliases the global it reads.
        let v = lint("global g\nproc f(a)\na = g + 1\nend\nmain\ncall f(g)\nend\n");
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0].kind,
            AliasKind::GlobalArgument { position: 0, .. }
        ));
    }

    #[test]
    fn global_argument_via_callee_write_flagged() {
        // f reads its formal but writes the global directly.
        let v = lint("global g\nproc f(a)\ng = a + 1\nend\nmain\ncall f(g)\nend\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn global_argument_read_only_is_fine() {
        let v = lint("global g\nproc f(a)\nprint(a + g)\nend\nmain\ncall f(g)\nend\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn global_to_untouching_procedure_is_fine() {
        // f modifies its formal but never touches g as a global.
        let v = lint("global g\nproc f(a)\na = 1\nend\nmain\ncall f(g)\nend\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn transitive_global_access_detected() {
        // f passes to h which writes g — MOD is transitive.
        let src =
            "global g\nproc h()\ng = 1\nend\nproc f(a)\ncall h()\nend\nmain\ncall f(g)\nend\n";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn violation_fields_are_accessible() {
        let v = lint("proc f(a, b)\na = 1\nend\nmain\ncall f(x, x)\nend\n");
        let violation = &v[0];
        assert_eq!(violation.caller.index(), 1);
        assert_eq!(violation.callee.index(), 0);
        assert_eq!(violation.index, 0);
    }
}
