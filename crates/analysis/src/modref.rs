//! Interprocedural MOD/REF side-effect summaries.
//!
//! A procedure's *slots* are its formal parameters plus the globals it
//! (transitively) touches — the paper treats globals as extra parameters
//! (footnote 1). `MOD(p)` is the set of slots an invocation of `p` may
//! modify; `REF(p)` the set it may reference. Both are flow-insensitive
//! and computed by a worklist fixpoint over the call graph, in the spirit
//! of Cooper–Kennedy (no aliasing: FORTRAN/Minifor forbid aliased
//! actuals, see the `ipcp-lang` crate docs).
//!
//! Only **integer/real scalar** slots are tracked; arrays are opaque to
//! the constant analyses and excluded throughout (the paper's
//! limitation 2).
//!
//! The [`ModKills`] oracle translates `MOD` into caller-side SSA kill
//! sets; [`ipcp_ssa::WorstCaseKills`] is the "no MOD information"
//! counterpart.

use crate::budget::{Budget, Phase};
use crate::callgraph::CallGraph;
use ipcp_ir::{GlobalId, Instr, ProcId, Procedure, Program, VarId, VarKind};
use ipcp_ssa::KillOracle;
use std::collections::BTreeSet;

/// An interprocedural parameter slot of a procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Slot {
    /// The `i`-th formal parameter.
    Formal(u32),
    /// A program global.
    Global(GlobalId),
    /// The function result (Minifor functions return by value; this slot
    /// carries returned-constant information like a by-ref formal would
    /// in FORTRAN).
    Result,
}

impl std::fmt::Display for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slot::Formal(i) => write!(f, "arg{i}"),
            Slot::Global(g) => write!(f, "{g}"),
            Slot::Result => write!(f, "result"),
        }
    }
}

/// The slot a caller-side variable corresponds to, if any.
pub fn slot_of_var(proc: &Procedure, v: VarId) -> Option<Slot> {
    match proc.var(v).kind {
        VarKind::Formal(i) => Some(Slot::Formal(i)),
        VarKind::Global(g) => Some(Slot::Global(g)),
        VarKind::Local | VarKind::Temp => None,
    }
}

/// MOD/REF summaries for every procedure.
#[derive(Debug, Clone)]
pub struct ModRefInfo {
    mods: Vec<BTreeSet<Slot>>,
    refs: Vec<BTreeSet<Slot>>,
}

impl ModRefInfo {
    /// Slots procedure `p` may modify.
    pub fn mods(&self, p: ProcId) -> &BTreeSet<Slot> {
        &self.mods[p.index()]
    }

    /// Slots procedure `p` may reference.
    pub fn refs(&self, p: ProcId) -> &BTreeSet<Slot> {
        &self.refs[p.index()]
    }

    /// Whether `p` may modify `slot`.
    pub fn is_modified(&self, p: ProcId, slot: Slot) -> bool {
        self.mods[p.index()].contains(&slot)
    }

    /// The interprocedural parameter slots of `p` for constant
    /// propagation: its scalar integer formals plus every global in
    /// `REF(p) ∪ MOD(p)`.
    ///
    /// Real-typed formals are included (they simply stay ⊥); array formals
    /// are not.
    pub fn param_slots(&self, program: &Program, p: ProcId) -> Vec<Slot> {
        let proc = program.proc(p);
        let mut slots = Vec::new();
        for (i, v) in proc.formal_ids().enumerate() {
            if proc.var(v).ty.is_scalar() {
                slots.push(Slot::Formal(i as u32));
            }
        }
        let mut globals: BTreeSet<GlobalId> = BTreeSet::new();
        for s in self.refs[p.index()]
            .iter()
            .chain(self.mods[p.index()].iter())
        {
            if let Slot::Global(g) = s {
                if program.global(*g).ty.is_scalar() {
                    globals.insert(*g);
                }
            }
        }
        slots.extend(globals.into_iter().map(Slot::Global));
        slots
    }
}

/// Computes MOD/REF summaries by fixpoint over the call graph.
pub fn compute_modref(program: &Program, cg: &CallGraph) -> ModRefInfo {
    compute_modref_budgeted(program, cg, &Budget::unlimited())
}

/// The sound worst case: every procedure may modify and reference all of
/// its scalar formals and every scalar global — what "no MOD/REF
/// information" means for the downstream analyses.
fn worst_case_modref(program: &Program) -> ModRefInfo {
    let globals: Vec<Slot> = program
        .global_ids()
        .filter(|&g| program.global(g).ty.is_scalar())
        .map(Slot::Global)
        .collect();
    let mut mods = Vec::with_capacity(program.procs.len());
    let mut refs = Vec::with_capacity(program.procs.len());
    for pid in program.proc_ids() {
        let proc = program.proc(pid);
        let mut set: BTreeSet<Slot> = globals.iter().copied().collect();
        for (i, v) in proc.formal_ids().enumerate() {
            if proc.var(v).ty.is_scalar() {
                set.insert(Slot::Formal(i as u32));
            }
        }
        mods.push(set.clone());
        refs.push(set);
    }
    ModRefInfo { mods, refs }
}

/// Computes MOD/REF summaries under a fuel budget. Each procedure visit
/// of the transitive fixpoint draws one unit; on exhaustion every
/// summary degrades to the worst case (all scalar formals and globals
/// both modified and referenced), which is sound for every consumer.
pub fn compute_modref_budgeted(program: &Program, cg: &CallGraph, budget: &Budget) -> ModRefInfo {
    let n = program.procs.len();
    let mut mods: Vec<BTreeSet<Slot>> = vec![BTreeSet::new(); n];
    let mut refs: Vec<BTreeSet<Slot>> = vec![BTreeSet::new(); n];

    // Direct (local) effects.
    for pid in program.proc_ids() {
        let proc = program.proc(pid);
        let (m, r) = direct_effects(proc);
        mods[pid.index()] = m;
        refs[pid.index()] = r;
    }

    // Transitive effects: iterate bottom-up until stable (the bottom-up
    // SCC order makes most programs converge in one pass; recursion takes
    // a few more).
    let mut changed = true;
    while changed {
        changed = false;
        for scc in cg.sccs() {
            for &pid in scc {
                if !budget.checkpoint(Phase::ModRef, 1) {
                    budget.record_degradation(Phase::ModRef);
                    return worst_case_modref(program);
                }
                let proc = program.proc(pid);
                let (new_mods, new_refs) =
                    transitive_effects(proc, cg.sites(pid), &|c| mods[c.index()].clone(), &|c| {
                        refs[c.index()].clone()
                    });
                for s in new_mods {
                    if mods[pid.index()].insert(s) {
                        changed = true;
                    }
                }
                for s in new_refs {
                    if refs[pid.index()].insert(s) {
                        changed = true;
                    }
                }
            }
        }
    }

    ModRefInfo { mods, refs }
}

/// The slots one transitive step propagates into `proc` from its call
/// sites, given the current callee summaries. Shared by the sequential
/// fixpoint and the SCC-wave parallel fixpoint so both see identical
/// propagation rules.
fn transitive_effects(
    proc: &Procedure,
    sites: &[crate::callgraph::CallSite],
    callee_mods: &dyn Fn(ProcId) -> BTreeSet<Slot>,
    callee_refs: &dyn Fn(ProcId) -> BTreeSet<Slot>,
) -> (Vec<Slot>, Vec<Slot>) {
    let mut new_mods = Vec::new();
    let mut new_refs = Vec::new();
    for site in sites {
        let Instr::Call { callee, args, .. } = &proc.block(site.block).instrs[site.index] else {
            unreachable!("call site indexes a call");
        };
        for slot in callee_mods(*callee) {
            match slot {
                Slot::Formal(k) => {
                    let arg = &args[k as usize];
                    if arg.by_ref {
                        if let Some(v) = arg.value.as_var() {
                            if let Some(s) = slot_of_var(proc, v) {
                                new_mods.push(s);
                            }
                        }
                    }
                }
                Slot::Global(g) => new_mods.push(Slot::Global(g)),
                Slot::Result => {}
            }
        }
        for slot in callee_refs(*callee) {
            // Formal refs are covered by the caller's direct operand scan
            // (the actual's value is an operand of the call); only global
            // refs propagate.
            if let Slot::Global(g) = slot {
                new_refs.push(Slot::Global(g));
            }
        }
    }
    (new_mods, new_refs)
}

/// One transitive step over a whole SCC against a snapshot of the global
/// summaries. Members are visited in SCC order and see each other's
/// updates through a local overlay — exactly the data the sequential
/// bottom-up iteration would read, because same-wave SCCs never call
/// each other and lower waves are already merged into `mods`/`refs`.
#[allow(clippy::type_complexity)]
fn scc_transitive_step(
    program: &Program,
    cg: &CallGraph,
    members: &[ProcId],
    mods: &[BTreeSet<Slot>],
    refs: &[BTreeSet<Slot>],
) -> (Vec<(ProcId, BTreeSet<Slot>, BTreeSet<Slot>)>, bool) {
    let mut local: Vec<(ProcId, BTreeSet<Slot>, BTreeSet<Slot>)> = members
        .iter()
        .map(|&p| (p, mods[p.index()].clone(), refs[p.index()].clone()))
        .collect();
    // Sorted member index: the per-callee `position` scan is quadratic in
    // the SCC size, which matters for deep recursion towers.
    let mut member_idx: Vec<(ProcId, usize)> =
        members.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    member_idx.sort_unstable_by_key(|&(p, _)| p);
    let find = |c: ProcId| -> Option<usize> {
        member_idx
            .binary_search_by_key(&c, |&(p, _)| p)
            .ok()
            .map(|k| member_idx[k].1)
    };
    let mut changed = false;
    for idx in 0..members.len() {
        let pid = members[idx];
        let proc = program.proc(pid);
        let (new_mods, new_refs) = transitive_effects(
            proc,
            cg.sites(pid),
            &|c| match find(c) {
                Some(j) => local[j].1.clone(),
                None => mods[c.index()].clone(),
            },
            &|c| match find(c) {
                Some(j) => local[j].2.clone(),
                None => refs[c.index()].clone(),
            },
        );
        let entry = &mut local[idx];
        for s in new_mods {
            if entry.1.insert(s) {
                changed = true;
            }
        }
        for s in new_refs {
            if entry.2.insert(s) {
                changed = true;
            }
        }
    }
    (local, changed)
}

/// Computes MOD/REF summaries with the transitive fixpoint scheduled in
/// SCC-condensation waves: every SCC of one reverse-topological level
/// runs concurrently, and each wave's results merge before the next wave
/// starts. Bit-identical to [`compute_modref_budgeted`] (same data reads,
/// same pass count, same fuel draw) at any `jobs` value; with `jobs <= 1`
/// it simply delegates to the sequential fixpoint.
pub fn compute_modref_par(
    program: &Program,
    cg: &CallGraph,
    budget: &Budget,
    jobs: usize,
) -> ModRefInfo {
    if jobs <= 1 {
        return compute_modref_budgeted(program, cg, budget);
    }
    let pids: Vec<ProcId> = program.proc_ids().collect();

    // Direct (local) effects: per-procedure fan-out, merged in ProcId
    // order by construction.
    let mut mods: Vec<BTreeSet<Slot>> = Vec::with_capacity(pids.len());
    let mut refs: Vec<BTreeSet<Slot>> = Vec::with_capacity(pids.len());
    for (m, r) in crate::par::par_map(jobs, &pids, |_, &pid| direct_effects(program.proc(pid))) {
        mods.push(m);
        refs.push(r);
    }

    let sccs = cg.sccs();
    let waves = crate::par::scc_waves(cg);
    // Per-procedure work estimate (≈ instruction visits) for the
    // cost-based wave gate; computed once, summed per wave below.
    let est: Vec<u64> = pids
        .iter()
        .map(|&pid| {
            let proc = program.proc(pid);
            proc.block_ids()
                .map(|b| proc.block(b).instrs.len() as u64 + 1)
                .sum::<u64>()
                .max(1)
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for wave in &waves {
            // Fuel: one unit per procedure visit, drawn deterministically
            // on the calling thread — the same count per pass as the
            // sequential fixpoint.
            for &si in wave {
                for _ in &sccs[si] {
                    if !budget.checkpoint(Phase::ModRef, 1) {
                        budget.record_degradation(Phase::ModRef);
                        return worst_case_modref(program);
                    }
                }
            }
            let units: u64 = wave
                .iter()
                .flat_map(|&si| sccs[si].iter())
                .map(|&pid| est[pid.index()])
                .sum();
            let wave_jobs = crate::par::wave_jobs(jobs, wave.len(), units);
            let results = crate::par::par_map(wave_jobs, wave, |_, &si| {
                scc_transitive_step(program, cg, &sccs[si], &mods, &refs)
            });
            for (updates, scc_changed) in results {
                changed |= scc_changed;
                for (pid, m, r) in updates {
                    mods[pid.index()] = m;
                    refs[pid.index()] = r;
                }
            }
        }
    }

    ModRefInfo { mods, refs }
}

/// [`compute_modref_par`] with a phase span and summary counters
/// reported to `sink`: `modref.mod_slots` / `modref.ref_slots` total
/// the computed summary sizes. The returned summaries are the same
/// bytes at any sink.
pub fn compute_modref_obs(
    program: &Program,
    cg: &CallGraph,
    budget: &Budget,
    jobs: usize,
    sink: &dyn ipcp_obs::ObsSink,
) -> ModRefInfo {
    let start = sink.now();
    let modref = compute_modref_par(program, cg, budget, jobs);
    if sink.enabled() {
        sink.span("modref", "phase", start, sink.now().saturating_sub(start));
        let mods: usize = program.proc_ids().map(|p| modref.mods(p).len()).sum();
        let refs: usize = program.proc_ids().map(|p| modref.refs(p).len()).sum();
        sink.count("modref.mod_slots", mods as u64);
        sink.count("modref.ref_slots", refs as u64);
    }
    modref
}

/// Local (intraprocedural) MOD/REF of one procedure. Scalar slots only.
fn direct_effects(proc: &Procedure) -> (BTreeSet<Slot>, BTreeSet<Slot>) {
    let mut mods = BTreeSet::new();
    let mut refs = BTreeSet::new();
    let reference = |v: VarId, set: &mut BTreeSet<Slot>| {
        if proc.var(v).ty.is_scalar() {
            if let Some(s) = slot_of_var(proc, v) {
                set.insert(s);
            }
        }
    };
    for b in proc.block_ids() {
        let block = proc.block(b);
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                reference(d, &mut mods);
            }
            instr.for_each_use(|op| {
                if let Some(v) = op.as_var() {
                    reference(v, &mut refs);
                }
            });
        }
        block.term.for_each_use(|op| {
            if let Some(v) = op.as_var() {
                reference(v, &mut refs);
            }
        });
    }
    (mods, refs)
}

/// Extends every procedure's variable table with an entry for each scalar
/// global in its transitive `REF ∪ MOD` set that lowering did not already
/// add (lowering only records globals the procedure *names*).
///
/// This is required for soundness of the per-procedure analyses: a global
/// modified or read only by callees must have SSA names in the caller so
/// call kill sets and call-site snapshots track its flow-sensitive value.
/// Returns the number of entries added.
pub fn augment_global_vars(program: &mut Program, modref: &ModRefInfo) -> usize {
    let mut added = 0;
    for p in 0..program.procs.len() {
        let pid = ProcId::from_index(p);
        let mut wanted: BTreeSet<GlobalId> = BTreeSet::new();
        for s in modref.refs(pid).iter().chain(modref.mods(pid).iter()) {
            if let Slot::Global(g) = s {
                if program.global(*g).ty.is_scalar() {
                    wanted.insert(*g);
                }
            }
        }
        let decls: Vec<(GlobalId, String, ipcp_lang::ast::Ty)> = wanted
            .into_iter()
            .map(|g| (g, program.global(g).name.clone(), program.global(g).ty))
            .collect();
        let proc = &mut program.procs[p];
        for (g, name, ty) in decls {
            let present = proc.vars.iter().any(|v| v.kind == VarKind::Global(g));
            if !present {
                proc.vars.push(ipcp_ir::VarDecl {
                    name,
                    ty,
                    kind: VarKind::Global(g),
                });
                added += 1;
            }
        }
    }
    added
}

/// A [`KillOracle`] backed by MOD summaries: a call kills exactly the
/// by-reference scalar actuals bound to modified formals, plus the
/// caller-visible globals in the callee's MOD set.
#[derive(Debug, Clone)]
pub struct ModKills<'a> {
    program: &'a Program,
    modref: &'a ModRefInfo,
}

impl<'a> ModKills<'a> {
    /// Creates the oracle.
    pub fn new(program: &'a Program, modref: &'a ModRefInfo) -> Self {
        ModKills { program, modref }
    }
}

impl KillOracle for ModKills<'_> {
    fn kills(&self, caller: &Procedure, callee: ProcId, args: &[ipcp_ir::CallArg]) -> Vec<VarId> {
        let mods = self.modref.mods(callee);
        let _ = self.program;
        let mut kills = Vec::new();
        for (k, arg) in args.iter().enumerate() {
            if !arg.by_ref {
                continue;
            }
            let Some(v) = arg.value.as_var() else {
                continue;
            };
            if caller.var(v).ty.is_array() {
                continue;
            }
            if mods.contains(&Slot::Formal(k as u32)) && !kills.contains(&v) {
                kills.push(v);
            }
        }
        for v in caller.var_ids() {
            let decl = caller.var(v);
            if let VarKind::Global(g) = decl.kind {
                if decl.ty.is_scalar() && mods.contains(&Slot::Global(g)) && !kills.contains(&v) {
                    kills.push(v);
                }
            }
        }
        kills
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::compile_to_ir;

    fn analyze(src: &str) -> (Program, CallGraph, ModRefInfo) {
        let program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let mr = compute_modref(&program, &cg);
        (program, cg, mr)
    }

    fn slot_names(program: &Program, p: ProcId, slots: &BTreeSet<Slot>) -> Vec<String> {
        slots
            .iter()
            .map(|s| match s {
                Slot::Formal(i) => {
                    let proc = program.proc(p);
                    proc.var(ipcp_ir::VarId(*i)).name.clone()
                }
                Slot::Global(g) => program.global(*g).name.clone(),
                Slot::Result => "result".into(),
            })
            .collect()
    }

    #[test]
    fn exhausted_budget_degrades_to_worst_case() {
        let src = "global g\nproc f(a, b)\na = b + 1\nend\nmain\ncall f(x, y)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let cg = CallGraph::new(&program);
        let budget = Budget::with_fuel(0);
        let mr = compute_modref_budgeted(&program, &cg, &budget);
        let f = program.proc_by_name("f").unwrap();
        // Worst case: both formals and the global count as modified and
        // referenced — a superset of the precise answer, sound everywhere.
        assert!(mr.is_modified(f, Slot::Formal(0)));
        assert!(mr.is_modified(f, Slot::Formal(1)));
        assert!(mr.refs(f).iter().any(|s| matches!(s, Slot::Global(_))));
        assert!(budget.report().degradations[&Phase::ModRef] > 0);
        // The precise run is a subset of the degraded one.
        let precise = compute_modref(&program, &cg);
        for pid in program.proc_ids() {
            assert!(precise.mods(pid).is_subset(mr.mods(pid)));
        }
    }

    #[test]
    fn direct_formal_mod() {
        let (program, _, mr) = analyze("proc f(a, b)\na = b + 1\nend\nmain\ncall f(x, y)\nend\n");
        let f = program.proc_by_name("f").unwrap();
        assert!(mr.is_modified(f, Slot::Formal(0)));
        assert!(!mr.is_modified(f, Slot::Formal(1)));
        assert!(mr.refs(f).contains(&Slot::Formal(1)));
        assert!(!mr.refs(f).contains(&Slot::Formal(0)));
    }

    #[test]
    fn global_mod_and_ref() {
        let (program, _, mr) =
            analyze("global g\nglobal h\nproc f()\ng = h\nend\nmain\ncall f()\nend\n");
        let f = program.proc_by_name("f").unwrap();
        assert_eq!(slot_names(&program, f, mr.mods(f)), vec!["g"]);
        assert_eq!(slot_names(&program, f, mr.refs(f)), vec!["h"]);
    }

    #[test]
    fn transitive_mod_through_binding() {
        // h modifies its formal; g passes its own formal through; so g
        // modifies its formal too, transitively.
        let src = "proc h(x)\nx = 1\nend\nproc g(y)\ncall h(y)\nend\nmain\ncall g(z)\nend\n";
        let (program, _, mr) = analyze(src);
        let g = program.proc_by_name("g").unwrap();
        assert!(mr.is_modified(g, Slot::Formal(0)));
        // main modifies nothing slot-like (z is a local).
        assert!(mr.mods(program.main).is_empty());
    }

    #[test]
    fn transitive_global_mod() {
        let src = "global c\nproc inner()\nc = 5\nend\nproc outer()\ncall inner()\nend\nmain\ncall outer()\nend\n";
        let (program, _, mr) = analyze(src);
        let outer = program.proc_by_name("outer").unwrap();
        assert_eq!(slot_names(&program, outer, mr.mods(outer)), vec!["c"]);
        // main also "modifies" c transitively.
        assert_eq!(
            slot_names(&program, program.main, mr.mods(program.main)),
            vec!["c"]
        );
    }

    #[test]
    fn by_value_args_do_not_propagate_mod() {
        let src = "proc h(x)\nx = 1\nend\nproc g(y)\ncall h(y + 0)\nend\nmain\ncall g(z)\nend\n";
        let (program, _, mr) = analyze(src);
        let g = program.proc_by_name("g").unwrap();
        assert!(!mr.is_modified(g, Slot::Formal(0)));
    }

    #[test]
    fn read_counts_as_mod() {
        let (program, _, mr) = analyze("proc f(a)\nread(a)\nend\nmain\ncall f(x)\nend\n");
        let f = program.proc_by_name("f").unwrap();
        assert!(mr.is_modified(f, Slot::Formal(0)));
    }

    #[test]
    fn recursive_mod_converges() {
        let src = "\
global acc\n\
proc walk(n)\nif n > 0 then\nacc = acc + n\ncall walk(n - 1)\nend\nend\n\
main\ncall walk(5)\nend\n";
        let (program, _, mr) = analyze(src);
        let walk = program.proc_by_name("walk").unwrap();
        assert_eq!(slot_names(&program, walk, mr.mods(walk)), vec!["acc"]);
        assert!(mr.refs(walk).contains(&Slot::Formal(0)));
    }

    #[test]
    fn mutual_recursion_converges() {
        let src = "\
global depth\n\
proc ping(n)\ndepth = depth + 1\nif n > 0 then\ncall pong(n - 1)\nend\nend\n\
proc pong(n)\nif n > 0 then\ncall ping(n - 1)\nend\nend\n\
main\ncall ping(4)\nend\n";
        let (program, _, mr) = analyze(src);
        let pong = program.proc_by_name("pong").unwrap();
        // pong modifies depth only transitively through ping.
        assert_eq!(slot_names(&program, pong, mr.mods(pong)), vec!["depth"]);
    }

    #[test]
    fn arrays_are_not_slots() {
        let src = "global a(5)\nproc f(v())\nv(1) = 2\na(1) = 3\nend\nmain\ninteger b(5)\ncall f(b)\nend\n";
        let (program, _, mr) = analyze(src);
        let f = program.proc_by_name("f").unwrap();
        assert!(mr.mods(f).is_empty(), "{:?}", mr.mods(f));
    }

    #[test]
    fn param_slots_include_touched_globals_only() {
        let src = "global used\nglobal untouched\nglobal real r\n\
                   proc f(a, real b, v())\na = used\nr = b\nend\nmain\ninteger w(3)\ncall f(x, 1.5, w)\nend\n";
        let (program, _, mr) = analyze(src);
        let f = program.proc_by_name("f").unwrap();
        let slots = mr.param_slots(&program, f);
        // Formals: a (int), b (real) — the array v is excluded.
        assert!(slots.contains(&Slot::Formal(0)));
        assert!(slots.contains(&Slot::Formal(1)));
        assert_eq!(
            slots
                .iter()
                .filter(|s| matches!(s, Slot::Formal(_)))
                .count(),
            2
        );
        // Globals: `used` (ref'd); `r` is real but scalar → included; `untouched` absent.
        let globals: Vec<String> = slots
            .iter()
            .filter_map(|s| match s {
                Slot::Global(g) => Some(program.global(*g).name.clone()),
                _ => None,
            })
            .collect();
        assert!(globals.contains(&"used".to_string()));
        assert!(globals.contains(&"r".to_string()));
        assert!(!globals.contains(&"untouched".to_string()));
    }

    #[test]
    fn mod_kills_oracle() {
        let src = "global g\nglobal h\nproc f(a, b)\na = 1\ng = 2\nend\n\
                   main\nx = h\ny = 0\ncall f(y, x)\nz = g\nend\n";
        let (program, _, mr) = analyze(src);
        let oracle = ModKills::new(&program, &mr);
        let main = program.proc(program.main);
        let f = program.proc_by_name("f").unwrap();
        // Find the call's args.
        let mut killed_names = Vec::new();
        for b in main.block_ids() {
            for instr in &main.block(b).instrs {
                if let Instr::Call { args, .. } = instr {
                    for v in oracle.kills(main, f, args) {
                        killed_names.push(main.var(v).name.clone());
                    }
                }
            }
        }
        // y (bound to modified formal a) and g (modified global) die;
        // x (bound to unmodified b) and h (unreferenced... h is read by
        // main itself but f does not modify it) survive.
        assert!(killed_names.contains(&"y".to_string()), "{killed_names:?}");
        assert!(killed_names.contains(&"g".to_string()), "{killed_names:?}");
        assert!(!killed_names.contains(&"x".to_string()), "{killed_names:?}");
        assert!(!killed_names.contains(&"h".to_string()), "{killed_names:?}");
    }

    #[test]
    fn parallel_fixpoint_matches_sequential_bit_for_bit() {
        let sources = [
            "global c\nproc inner()\nc = 5\nend\nproc outer()\ncall inner()\nend\nmain\ncall outer()\nend\n",
            "global depth\n\
             proc ping(n)\ndepth = depth + 1\nif n > 0 then\ncall pong(n - 1)\nend\nend\n\
             proc pong(n)\nif n > 0 then\ncall ping(n - 1)\nend\nend\n\
             main\ncall ping(4)\nend\n",
            "proc h(x)\nx = 1\nend\nproc g(y)\ncall h(y)\nend\nmain\ncall g(z)\nend\n",
        ];
        for src in sources {
            let program = compile_to_ir(src).unwrap();
            let cg = CallGraph::new(&program);
            let seq_budget = Budget::unlimited();
            let seq = compute_modref_budgeted(&program, &cg, &seq_budget);
            for jobs in [0, 1, 2, 8] {
                let par_budget = Budget::unlimited();
                let par = compute_modref_par(&program, &cg, &par_budget, jobs);
                for pid in program.proc_ids() {
                    assert_eq!(seq.mods(pid), par.mods(pid), "mods of {pid:?} at {jobs}");
                    assert_eq!(seq.refs(pid), par.refs(pid), "refs of {pid:?} at {jobs}");
                }
                // Identical pass count → identical fuel draw.
                assert_eq!(seq_budget.fuel_consumed(), par_budget.fuel_consumed());
            }
        }
    }

    #[test]
    fn slot_display() {
        assert_eq!(Slot::Formal(2).to_string(), "arg2");
        assert_eq!(Slot::Global(GlobalId(1)).to_string(), "g1");
        assert_eq!(Slot::Result.to_string(), "result");
    }
}
