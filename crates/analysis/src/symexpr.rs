//! Context-independent symbolic expressions over procedure entry slots.
//!
//! The paper's jump-function generator "can build an arbitrarily complex
//! representation for an arithmetic expression … converted into a
//! context-independent representation" (§4.1). [`SymExpr`] is that
//! representation: polynomials (the `+ - *` fragment, kept in canonical
//! form by [`crate::poly`]) plus opaque operator nodes for division,
//! remainder, comparisons, and logical operators, so *all* standard
//! integer operations are supported (§3.1.4).
//!
//! Expressions are persistent (`Arc`-shared) and size-bounded; smart
//! constructors return `None` when a result would exceed [`MAX_NODES`],
//! and callers treat that as ⊥.

use crate::lattice::LatticeVal;
use crate::modref::Slot;
use crate::poly::{Poly, PolyCaps, MAX_DEGREE, MAX_TERMS};
use ipcp_lang::ast::BinOp;
use ipcp_lang::interp::eval_binop_int;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Maximum weight (roughly, node count) of one expression.
pub const MAX_NODES: u32 = 512;

/// Size bounds for symbolic-expression construction: an expression
/// weight cap plus the polynomial caps beneath it. Defaults match the
/// module constants; fuel-governed callers tighten them via
/// [`ExprCaps::for_fuel`] so expressions stay small when fuel is short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExprCaps {
    /// Maximum expression weight (see [`SymExpr::size`]).
    pub max_nodes: u32,
    /// Bounds for the polynomial fragment.
    pub poly: PolyCaps,
}

impl Default for ExprCaps {
    fn default() -> Self {
        ExprCaps {
            max_nodes: MAX_NODES,
            poly: PolyCaps::default(),
        }
    }
}

impl ExprCaps {
    /// Caps proportional to the remaining fuel: unlimited fuel keeps the
    /// defaults; a small tank shrinks the representable expressions so
    /// symbolic evaluation cannot outspend the budget building one value.
    pub fn for_fuel(limit: Option<u64>) -> ExprCaps {
        let Some(n) = limit else {
            return ExprCaps::default();
        };
        ExprCaps {
            max_nodes: (MAX_NODES as u64).min(n.clamp(4, MAX_NODES as u64)) as u32,
            poly: PolyCaps {
                max_terms: (MAX_TERMS as u64).min((n / 8).clamp(1, MAX_TERMS as u64)) as usize,
                max_degree: (MAX_DEGREE as u64).min((n / 64).clamp(1, MAX_DEGREE as u64)) as u32,
            },
        }
    }
}

/// A symbolic integer expression over entry slots.
#[derive(Debug, Clone)]
pub enum SymExpr {
    /// A polynomial (canonical form for `+ - *` and constants).
    Poly(Poly),
    /// An opaque binary operation (division, remainder, comparison,
    /// logical).
    Node {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Arc<SymExpr>,
        /// Right operand.
        rhs: Arc<SymExpr>,
        /// Cached weight.
        size: u32,
    },
    /// Logical negation (`not e`).
    Not {
        /// Operand.
        inner: Arc<SymExpr>,
        /// Cached weight.
        size: u32,
    },
    /// A gated (γ) value: `then_val` when `cond ≠ 0`, `else_val`
    /// otherwise. `None` branches are ⊥ (unrepresentable on that side).
    /// This is the gated-single-assignment extension the paper sketches
    /// in §4.2 — it lets a jump function carry a branch-dependent value
    /// that the interprocedural phase resolves once the predicate's
    /// inputs are known.
    Gate {
        /// The branch predicate.
        cond: Arc<SymExpr>,
        /// Value on the non-zero side (`None` = ⊥).
        then_val: Option<Arc<SymExpr>>,
        /// Value on the zero side (`None` = ⊥).
        else_val: Option<Arc<SymExpr>>,
        /// Cached weight.
        size: u32,
    },
}

impl PartialEq for SymExpr {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SymExpr::Poly(a), SymExpr::Poly(b)) => a == b,
            (
                SymExpr::Node {
                    op: oa,
                    lhs: la,
                    rhs: ra,
                    ..
                },
                SymExpr::Node {
                    op: ob,
                    lhs: lb,
                    rhs: rb,
                    ..
                },
            ) => oa == ob && (Arc::ptr_eq(la, lb) || la == lb) && (Arc::ptr_eq(ra, rb) || ra == rb),
            (SymExpr::Not { inner: a, .. }, SymExpr::Not { inner: b, .. }) => {
                Arc::ptr_eq(a, b) || a == b
            }
            (
                SymExpr::Gate {
                    cond: ca,
                    then_val: ta,
                    else_val: ea,
                    ..
                },
                SymExpr::Gate {
                    cond: cb,
                    then_val: tb,
                    else_val: eb,
                    ..
                },
            ) => {
                let arc_eq = |x: &Option<Arc<SymExpr>>, y: &Option<Arc<SymExpr>>| match (x, y) {
                    (None, None) => true,
                    (Some(x), Some(y)) => Arc::ptr_eq(x, y) || x == y,
                    _ => false,
                };
                (Arc::ptr_eq(ca, cb) || ca == cb) && arc_eq(ta, tb) && arc_eq(ea, eb)
            }
            _ => false,
        }
    }
}

impl Eq for SymExpr {}

impl SymExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> SymExpr {
        SymExpr::Poly(Poly::constant(c))
    }

    /// The entry value of `slot`.
    pub fn var(slot: Slot) -> SymExpr {
        SymExpr::Poly(Poly::var(slot))
    }

    /// Expression weight (used for the size cap).
    pub fn size(&self) -> u32 {
        match self {
            SymExpr::Poly(p) => 1 + p.term_count() as u32,
            SymExpr::Node { size, .. } | SymExpr::Not { size, .. } | SymExpr::Gate { size, .. } => {
                *size
            }
        }
    }

    /// The constant value, if the expression is a constant.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            SymExpr::Poly(p) => p.as_const(),
            _ => None,
        }
    }

    /// The single slot, if the expression is exactly one entry value (the
    /// pass-through shape).
    pub fn as_var(&self) -> Option<Slot> {
        match self {
            SymExpr::Poly(p) => p.as_var(),
            _ => None,
        }
    }

    /// The polynomial, if the expression is one.
    pub fn as_poly(&self) -> Option<&Poly> {
        match self {
            SymExpr::Poly(p) => Some(p),
            _ => None,
        }
    }

    /// Applies `op`, folding constants and keeping the polynomial fragment
    /// canonical. Returns `None` when the result is not representable
    /// (compile-time division by zero, or size caps exceeded) — callers
    /// treat that as ⊥.
    pub fn binop(op: BinOp, a: &SymExpr, b: &SymExpr) -> Option<SymExpr> {
        SymExpr::binop_with(op, a, b, &ExprCaps::default())
    }

    /// [`SymExpr::binop`] under explicit size bounds.
    pub fn binop_with(op: BinOp, a: &SymExpr, b: &SymExpr, caps: &ExprCaps) -> Option<SymExpr> {
        // Constant folding first (also catches div/rem by a zero constant).
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return eval_binop_int(op, x, y).ok().map(SymExpr::constant);
        }

        // Algebraic shortcuts that are sound under wrapping semantics.
        let (ca, cb) = (a.as_const(), b.as_const());
        match op {
            BinOp::Mul | BinOp::And if ca == Some(0) || cb == Some(0) => {
                return Some(SymExpr::constant(0));
            }
            BinOp::Mul if ca == Some(1) => return Some(b.clone()),
            BinOp::Mul if cb == Some(1) => return Some(a.clone()),
            BinOp::Add if ca == Some(0) => return Some(b.clone()),
            BinOp::Add | BinOp::Sub if cb == Some(0) => return Some(a.clone()),
            BinOp::Div if cb == Some(1) => return Some(a.clone()),
            BinOp::Or if ca.is_some_and(|c| c != 0) || cb.is_some_and(|c| c != 0) => {
                return Some(SymExpr::constant(1));
            }
            _ => {}
        }

        // Polynomial fragment.
        if let (SymExpr::Poly(pa), SymExpr::Poly(pb)) = (a, b) {
            let poly = match op {
                BinOp::Add => pa.checked_add_with(pb, &caps.poly),
                BinOp::Sub => pa.checked_sub_with(pb, &caps.poly),
                BinOp::Mul => pa.checked_mul_with(pb, &caps.poly),
                _ => None,
            };
            if let Some(p) = poly {
                return Some(SymExpr::Poly(p));
            }
        }

        // Opaque node.
        let size = 1u32.saturating_add(a.size()).saturating_add(b.size());
        if size > caps.max_nodes {
            return None;
        }
        Some(SymExpr::Node {
            op,
            lhs: Arc::new(a.clone()),
            rhs: Arc::new(b.clone()),
            size,
        })
    }

    /// Arithmetic negation.
    pub fn neg(a: &SymExpr) -> Option<SymExpr> {
        SymExpr::neg_with(a, &ExprCaps::default())
    }

    /// [`SymExpr::neg`] under explicit size bounds.
    pub fn neg_with(a: &SymExpr, caps: &ExprCaps) -> Option<SymExpr> {
        if let SymExpr::Poly(p) = a {
            return Some(SymExpr::Poly(p.neg()));
        }
        SymExpr::binop_with(BinOp::Sub, &SymExpr::constant(0), a, caps)
    }

    /// Logical negation.
    pub fn not(a: &SymExpr) -> Option<SymExpr> {
        SymExpr::not_with(a, &ExprCaps::default())
    }

    /// [`SymExpr::not`] under explicit size bounds.
    pub fn not_with(a: &SymExpr, caps: &ExprCaps) -> Option<SymExpr> {
        if let Some(c) = a.as_const() {
            return Some(SymExpr::constant(i64::from(c == 0)));
        }
        let size = 1u32.saturating_add(a.size());
        if size > caps.max_nodes {
            return None;
        }
        Some(SymExpr::Not {
            inner: Arc::new(a.clone()),
            size,
        })
    }

    /// Builds a gated value (see [`SymExpr::Gate`]); `None` branches are
    /// ⊥. Folds immediately when the predicate is constant, and collapses
    /// to the shared value when both branches are equal. Returns `None`
    /// when the result is entirely ⊥ or exceeds the size cap.
    pub fn gate(
        cond: &SymExpr,
        then_val: Option<&SymExpr>,
        else_val: Option<&SymExpr>,
    ) -> Option<SymExpr> {
        SymExpr::gate_with(cond, then_val, else_val, &ExprCaps::default())
    }

    /// [`SymExpr::gate`] under explicit size bounds.
    pub fn gate_with(
        cond: &SymExpr,
        then_val: Option<&SymExpr>,
        else_val: Option<&SymExpr>,
        caps: &ExprCaps,
    ) -> Option<SymExpr> {
        if let Some(c) = cond.as_const() {
            let chosen = if c != 0 { then_val } else { else_val };
            return chosen.cloned();
        }
        match (then_val, else_val) {
            (None, None) => None,
            (Some(a), Some(b)) if a == b => Some(a.clone()),
            _ => {
                let size = 1u32
                    .saturating_add(cond.size())
                    .saturating_add(then_val.map_or(0, SymExpr::size))
                    .saturating_add(else_val.map_or(0, SymExpr::size));
                if size > caps.max_nodes {
                    return None;
                }
                Some(SymExpr::Gate {
                    cond: Arc::new(cond.clone()),
                    then_val: then_val.map(|e| Arc::new(e.clone())),
                    else_val: else_val.map(|e| Arc::new(e.clone())),
                    size,
                })
            }
        }
    }

    /// Slots the expression depends on (the jump function's *support*,
    /// §2).
    pub fn support(&self) -> BTreeSet<Slot> {
        let mut out = BTreeSet::new();
        self.collect_support(&mut out);
        out
    }

    fn collect_support(&self, out: &mut BTreeSet<Slot>) {
        match self {
            SymExpr::Poly(p) => out.extend(p.support()),
            SymExpr::Node { lhs, rhs, .. } => {
                lhs.collect_support(out);
                rhs.collect_support(out);
            }
            SymExpr::Not { inner, .. } => inner.collect_support(out),
            SymExpr::Gate {
                cond,
                then_val,
                else_val,
                ..
            } => {
                cond.collect_support(out);
                if let Some(t) = then_val {
                    t.collect_support(out);
                }
                if let Some(e) = else_val {
                    e.collect_support(out);
                }
            }
        }
    }

    /// Evaluates with concrete slot values; `None` if a needed slot is
    /// unmapped or evaluation would trap (division by zero).
    pub fn eval(&self, env: &dyn Fn(Slot) -> Option<i64>) -> Option<i64> {
        match self {
            SymExpr::Poly(p) => p.eval(env),
            SymExpr::Node { op, lhs, rhs, .. } => {
                let l = lhs.eval(env)?;
                let r = rhs.eval(env)?;
                eval_binop_int(*op, l, r).ok()
            }
            SymExpr::Not { inner, .. } => Some(i64::from(inner.eval(env)? == 0)),
            SymExpr::Gate {
                cond,
                then_val,
                else_val,
                ..
            } => {
                let c = cond.eval(env)?;
                let chosen = if c != 0 { then_val } else { else_val };
                chosen.as_ref()?.eval(env)
            }
        }
    }

    /// Evaluates over the three-level constant lattice: ⊥ inputs poison
    /// the result, ⊤ inputs leave it optimistic, with the absorbing
    /// shortcuts (`0 * x`, `0 and x`, `c≠0 or x`) applied.
    pub fn eval_lattice(&self, env: &dyn Fn(Slot) -> LatticeVal) -> LatticeVal {
        match self {
            SymExpr::Poly(p) => {
                if let Some(c) = p.as_const() {
                    return LatticeVal::Const(c);
                }
                let mut any_top = false;
                for s in p.support() {
                    match env(s) {
                        LatticeVal::Bottom => return LatticeVal::Bottom,
                        LatticeVal::Top => any_top = true,
                        LatticeVal::Const(_) => {}
                    }
                }
                if any_top {
                    return LatticeVal::Top;
                }
                match p.eval(&|s| env(s).as_const()) {
                    Some(c) => LatticeVal::Const(c),
                    None => LatticeVal::Bottom,
                }
            }
            SymExpr::Node { op, lhs, rhs, .. } => {
                let l = lhs.eval_lattice(env);
                let r = rhs.eval_lattice(env);
                lattice_binop(*op, l, r)
            }
            SymExpr::Not { inner, .. } => {
                crate::lattice::lattice_unop(ipcp_lang::ast::UnOp::Not, inner.eval_lattice(env))
            }
            SymExpr::Gate {
                cond,
                then_val,
                else_val,
                ..
            } => {
                let branch = |b: &Option<Arc<SymExpr>>| match b {
                    Some(e) => e.eval_lattice(env),
                    None => LatticeVal::Bottom,
                };
                match cond.eval_lattice(env) {
                    LatticeVal::Const(c) => branch(if c != 0 { then_val } else { else_val }),
                    LatticeVal::Top => LatticeVal::Top,
                    // Unknown predicate: the value is one of the branches.
                    LatticeVal::Bottom => branch(then_val).meet(branch(else_val)),
                }
            }
        }
    }

    /// Substitutes every slot with `map(slot)`; returns `None` if any slot
    /// is unmapped or the result exceeds the size caps. This is jump
    /// function *composition* (used when return jump functions are folded
    /// into a caller's symbolic state).
    pub fn subst(&self, map: &dyn Fn(Slot) -> Option<SymExpr>) -> Option<SymExpr> {
        match self {
            SymExpr::Poly(p) => {
                let mut acc = SymExpr::constant(0);
                for (m, c) in p.terms() {
                    let mut term = SymExpr::constant(c);
                    for &(slot, exp) in m.factors() {
                        let v = map(slot)?;
                        for _ in 0..exp {
                            term = SymExpr::binop(BinOp::Mul, &term, &v)?;
                        }
                    }
                    acc = SymExpr::binop(BinOp::Add, &acc, &term)?;
                }
                Some(acc)
            }
            SymExpr::Node { op, lhs, rhs, .. } => {
                let l = lhs.subst(map)?;
                let r = rhs.subst(map)?;
                SymExpr::binop(*op, &l, &r)
            }
            SymExpr::Not { inner, .. } => SymExpr::not(&inner.subst(map)?),
            SymExpr::Gate {
                cond,
                then_val,
                else_val,
                ..
            } => {
                let c = cond.subst(map)?;
                // A branch that fails to substitute degrades to ⊥ rather
                // than poisoning the whole gate.
                let t = then_val.as_ref().and_then(|e| e.subst(map));
                let e = else_val.as_ref().and_then(|e| e.subst(map));
                SymExpr::gate(&c, t.as_ref(), e.as_ref())
            }
        }
    }
}

// The lattice transfer functions live beside the lattice itself; the
// re-export keeps the historical `symexpr::lattice_binop` path working.
pub use crate::lattice::{lattice_binop, lattice_unop};

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExpr::Poly(p) => write!(f, "{p}"),
            SymExpr::Node { op, lhs, rhs, .. } => write!(f, "({lhs} {op} {rhs})"),
            SymExpr::Not { inner, .. } => write!(f, "(not {inner})"),
            SymExpr::Gate {
                cond,
                then_val,
                else_val,
                ..
            } => {
                let fmt_branch = |b: &Option<Arc<SymExpr>>| match b {
                    Some(e) => e.to_string(),
                    None => "⊥".to_string(),
                };
                write!(
                    f,
                    "γ({cond} ? {} : {})",
                    fmt_branch(then_val),
                    fmt_branch(else_val)
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::GlobalId;

    fn x() -> SymExpr {
        SymExpr::var(Slot::Formal(0))
    }

    fn g() -> SymExpr {
        SymExpr::var(Slot::Global(GlobalId(0)))
    }

    fn bin(op: BinOp, a: &SymExpr, b: &SymExpr) -> SymExpr {
        SymExpr::binop(op, a, b).expect("representable")
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            bin(BinOp::Add, &SymExpr::constant(2), &SymExpr::constant(3)).as_const(),
            Some(5)
        );
        assert_eq!(
            bin(BinOp::Div, &SymExpr::constant(7), &SymExpr::constant(2)).as_const(),
            Some(3)
        );
        assert_eq!(
            bin(BinOp::Lt, &SymExpr::constant(1), &SymExpr::constant(2)).as_const(),
            Some(1)
        );
        // Division by a zero constant is unrepresentable (⊥).
        assert!(SymExpr::binop(BinOp::Div, &SymExpr::constant(1), &SymExpr::constant(0)).is_none());
        assert!(SymExpr::binop(BinOp::Rem, &SymExpr::constant(1), &SymExpr::constant(0)).is_none());
    }

    #[test]
    fn division_edges_fold_like_interpreter() {
        let min = SymExpr::constant(i64::MIN);
        // i64::MIN / -1 wraps to i64::MIN, i64::MIN % -1 wraps to 0.
        assert_eq!(
            bin(BinOp::Div, &min, &SymExpr::constant(-1)).as_const(),
            Some(i64::MIN)
        );
        assert_eq!(
            bin(BinOp::Rem, &min, &SymExpr::constant(-1)).as_const(),
            Some(0)
        );
        // Truncation toward zero for negative operands.
        assert_eq!(
            bin(BinOp::Div, &SymExpr::constant(-7), &SymExpr::constant(2)).as_const(),
            Some(-3)
        );
        assert_eq!(
            bin(BinOp::Rem, &SymExpr::constant(-7), &SymExpr::constant(2)).as_const(),
            Some(-1)
        );
    }

    #[test]
    fn lattice_binop_never_folds_possibly_zero_divisor() {
        use LatticeVal::*;
        // Constant trap → Bottom (the divide stays in the program).
        assert_eq!(lattice_binop(BinOp::Div, Const(1), Const(0)), Bottom);
        assert_eq!(lattice_binop(BinOp::Rem, Const(1), Const(0)), Bottom);
        // Unknown RHS: no absorbing shortcut may produce a constant, even
        // for `0 / n` (which traps when n == 0).
        assert_eq!(lattice_binop(BinOp::Div, Const(0), Bottom), Bottom);
        assert_eq!(lattice_binop(BinOp::Rem, Const(0), Bottom), Bottom);
        assert_eq!(lattice_binop(BinOp::Div, Const(0), Top), Top);
        // Wrapping edge folds to the runtime value.
        assert_eq!(
            lattice_binop(BinOp::Div, Const(i64::MIN), Const(-1)),
            Const(i64::MIN)
        );
    }

    #[test]
    fn polynomial_fragment_stays_canonical() {
        // (x + 1) + (x - 1) = 2x — still a polynomial, commutatively equal.
        let a = bin(BinOp::Add, &x(), &SymExpr::constant(1));
        let b = bin(BinOp::Sub, &x(), &SymExpr::constant(1));
        let s1 = bin(BinOp::Add, &a, &b);
        let s2 = bin(BinOp::Add, &b, &a);
        assert_eq!(s1, s2);
        assert!(s1.as_poly().is_some());
        assert_eq!(s1.as_poly().unwrap().degree(), 1);
    }

    #[test]
    fn pass_through_detection() {
        assert_eq!(x().as_var(), Some(Slot::Formal(0)));
        let x_plus_0 = bin(BinOp::Add, &x(), &SymExpr::constant(0));
        assert_eq!(
            x_plus_0.as_var(),
            Some(Slot::Formal(0)),
            "x + 0 simplifies to x"
        );
        let x_times_1 = bin(BinOp::Mul, &x(), &SymExpr::constant(1));
        assert_eq!(x_times_1.as_var(), Some(Slot::Formal(0)));
        // x - x + x normalizes back to x.
        let e = bin(BinOp::Add, &bin(BinOp::Sub, &x(), &x()), &x());
        assert_eq!(e.as_var(), Some(Slot::Formal(0)));
    }

    #[test]
    fn division_becomes_opaque_node() {
        let e = bin(BinOp::Div, &x(), &SymExpr::constant(2));
        assert!(matches!(e, SymExpr::Node { .. }));
        assert_eq!(e.as_const(), None);
        // But it still evaluates.
        let env = |s: Slot| if s == Slot::Formal(0) { Some(9) } else { None };
        assert_eq!(e.eval(&env), Some(4));
    }

    #[test]
    fn absorbing_shortcuts() {
        assert_eq!(
            bin(BinOp::Mul, &x(), &SymExpr::constant(0)).as_const(),
            Some(0)
        );
        assert_eq!(
            bin(BinOp::And, &SymExpr::constant(0), &x()).as_const(),
            Some(0)
        );
        assert_eq!(
            bin(BinOp::Or, &x(), &SymExpr::constant(5)).as_const(),
            Some(1)
        );
    }

    #[test]
    fn support_union() {
        let e = bin(
            BinOp::Div,
            &bin(BinOp::Add, &x(), &g()),
            &SymExpr::constant(2),
        );
        let s = e.support();
        assert!(s.contains(&Slot::Formal(0)));
        assert!(s.contains(&Slot::Global(GlobalId(0))));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn eval_matches_interpreter_semantics() {
        // (x % 4) * (x / 2) at x = -7: rem truncates toward zero.
        let e = bin(
            BinOp::Mul,
            &bin(BinOp::Rem, &x(), &SymExpr::constant(4)),
            &bin(BinOp::Div, &x(), &SymExpr::constant(2)),
        );
        let env = |_: Slot| Some(-7i64);
        assert_eq!(e.eval(&env), Some((-7 % 4) * (-7 / 2)));
    }

    #[test]
    fn eval_runtime_div_zero_is_none() {
        let e = bin(BinOp::Div, &SymExpr::constant(1), &x());
        assert_eq!(e.eval(&|_| Some(0)), None);
        assert_eq!(e.eval(&|_| Some(5)), Some(0));
    }

    #[test]
    fn eval_lattice_levels() {
        use LatticeVal::*;
        let e = bin(BinOp::Add, &x(), &g());
        assert_eq!(e.eval_lattice(&|_| Const(2)), Const(4));
        assert_eq!(
            e.eval_lattice(&|s| if s == Slot::Formal(0) { Const(2) } else { Top }),
            Top
        );
        assert_eq!(
            e.eval_lattice(&|s| if s == Slot::Formal(0) {
                Const(2)
            } else {
                Bottom
            }),
            Bottom
        );
        // 0 * ⊥ = 0 via the shortcut.
        let z = bin(BinOp::Div, &x(), &x()); // opaque, support {x}
        let prod = SymExpr::binop(BinOp::Mul, &SymExpr::constant(0), &z);
        // binop already folds 0 * anything.
        assert_eq!(prod.unwrap().as_const(), Some(0));
        assert_eq!(lattice_binop(BinOp::Mul, Const(0), Bottom), Const(0));
        assert_eq!(lattice_binop(BinOp::Or, Bottom, Const(3)), Const(1));
        assert_eq!(lattice_binop(BinOp::Add, Top, Bottom), Bottom);
        assert_eq!(lattice_binop(BinOp::Add, Top, Const(1)), Top);
        assert_eq!(lattice_binop(BinOp::Div, Const(1), Const(0)), Bottom);
    }

    #[test]
    fn substitution_composes() {
        // e = 2*x + g; substitute x ↦ y + 1, g ↦ 7  ⇒  2y + 9.
        let e = bin(
            BinOp::Add,
            &bin(BinOp::Mul, &SymExpr::constant(2), &x()),
            &g(),
        );
        let y = SymExpr::var(Slot::Formal(1));
        let composed = e
            .subst(&|s| match s {
                Slot::Formal(0) => Some(bin(BinOp::Add, &y, &SymExpr::constant(1))),
                Slot::Global(_) => Some(SymExpr::constant(7)),
                _ => None,
            })
            .expect("substitutable");
        let expect = bin(
            BinOp::Add,
            &bin(
                BinOp::Mul,
                &SymExpr::constant(2),
                &SymExpr::var(Slot::Formal(1)),
            ),
            &SymExpr::constant(9),
        );
        assert_eq!(composed, expect);
    }

    #[test]
    fn substitution_unmapped_slot_fails() {
        let e = bin(BinOp::Add, &x(), &g());
        assert!(e
            .subst(&|s| if s == Slot::Formal(0) {
                Some(SymExpr::constant(1))
            } else {
                None
            })
            .is_none());
    }

    #[test]
    fn substitution_through_opaque_nodes() {
        let e = bin(BinOp::Div, &x(), &SymExpr::constant(3));
        let composed = e.subst(&|_| Some(SymExpr::constant(10))).unwrap();
        assert_eq!(composed.as_const(), Some(3));
    }

    #[test]
    fn not_semantics() {
        assert_eq!(
            SymExpr::not(&SymExpr::constant(0)).unwrap().as_const(),
            Some(1)
        );
        assert_eq!(
            SymExpr::not(&SymExpr::constant(9)).unwrap().as_const(),
            Some(0)
        );
        let e = SymExpr::not(&x()).unwrap();
        assert_eq!(e.eval(&|_| Some(0)), Some(1));
        assert_eq!(e.eval(&|_| Some(3)), Some(0));
        use LatticeVal::*;
        assert_eq!(e.eval_lattice(&|_| Bottom), Bottom);
        assert_eq!(e.eval_lattice(&|_| Top), Top);
    }

    #[test]
    fn neg_of_poly() {
        let e = SymExpr::neg(&bin(BinOp::Add, &x(), &SymExpr::constant(2))).unwrap();
        let p = e.as_poly().unwrap();
        assert_eq!(p.eval(&|_| Some(3)), Some(-5));
    }

    #[test]
    fn size_cap_triggers() {
        // Build a deep chain of opaque divisions until the cap trips.
        let mut e = x();
        let mut tripped = false;
        for _ in 0..MAX_NODES {
            match SymExpr::binop(BinOp::Div, &e, &g()) {
                Some(next) => e = next,
                None => {
                    tripped = true;
                    break;
                }
            }
        }
        assert!(tripped, "size cap must trigger");
    }

    #[test]
    fn gate_construction_and_folding() {
        let cond = x();
        let g0 = SymExpr::gate(
            &cond,
            Some(&SymExpr::constant(1)),
            Some(&SymExpr::constant(2)),
        )
        .unwrap();
        assert!(matches!(g0, SymExpr::Gate { .. }));
        // Constant predicate folds immediately.
        let folded =
            SymExpr::gate(&SymExpr::constant(1), Some(&SymExpr::constant(7)), None).unwrap();
        assert_eq!(folded.as_const(), Some(7));
        assert!(SymExpr::gate(&SymExpr::constant(0), Some(&SymExpr::constant(7)), None).is_none());
        // Equal branches collapse.
        let same = SymExpr::gate(&cond, Some(&g()), Some(&g())).unwrap();
        assert_eq!(same.as_var(), Some(Slot::Global(GlobalId(0))));
        // Entirely-⊥ gates are unrepresentable.
        assert!(SymExpr::gate(&cond, None, None).is_none());
    }

    #[test]
    fn gate_eval_selects_branch() {
        let gate = SymExpr::gate(&x(), Some(&SymExpr::constant(10)), Some(&g())).unwrap();
        // cond = 1 → then; cond = 0 → else (g's value).
        let env_then = |s: Slot| {
            if s == Slot::Formal(0) {
                Some(1)
            } else {
                Some(99)
            }
        };
        assert_eq!(gate.eval(&env_then), Some(10));
        let env_else = |s: Slot| {
            if s == Slot::Formal(0) {
                Some(0)
            } else {
                Some(99)
            }
        };
        assert_eq!(gate.eval(&env_else), Some(99));
        // A ⊥ branch selected concretely evaluates to None.
        let half = SymExpr::gate(&x(), None, Some(&SymExpr::constant(4))).unwrap();
        assert_eq!(half.eval(&env_then), None);
        assert_eq!(half.eval(&env_else), Some(4));
    }

    #[test]
    fn gate_eval_lattice() {
        use LatticeVal::*;
        let gate = SymExpr::gate(&x(), Some(&SymExpr::constant(10)), None).unwrap();
        assert_eq!(gate.eval_lattice(&|_| Const(1)), Const(10));
        assert_eq!(
            gate.eval_lattice(&|_| Const(0)),
            Bottom,
            "⊥ branch selected"
        );
        assert_eq!(gate.eval_lattice(&|_| Top), Top);
        assert_eq!(
            gate.eval_lattice(&|_| Bottom),
            Bottom,
            "unknown predicate meets branches"
        );
        // Agreeing branches survive an unknown predicate.
        let both = SymExpr::gate(
            &bin(BinOp::Div, &x(), &g()),
            Some(&SymExpr::constant(3)),
            Some(&SymExpr::constant(3)),
        )
        .unwrap();
        assert_eq!(both.eval_lattice(&|_| Bottom), Const(3));
    }

    #[test]
    fn gate_support_and_subst() {
        let gate = SymExpr::gate(&x(), Some(&g()), None).unwrap();
        assert_eq!(gate.support().len(), 2);
        // Substituting the predicate to a constant folds the gate away.
        let out = gate
            .subst(&|s| match s {
                Slot::Formal(0) => Some(SymExpr::constant(1)),
                Slot::Global(_) => Some(SymExpr::constant(42)),
                _ => None,
            })
            .unwrap();
        assert_eq!(out.as_const(), Some(42));
        // A branch that fails to substitute degrades to ⊥ on that side only.
        let out = gate.subst(&|s| match s {
            Slot::Formal(0) => Some(SymExpr::var(Slot::Formal(1))),
            _ => None, // g unmapped → then-branch becomes ⊥
        });
        assert!(
            out.is_none(),
            "gate with both branches ⊥ is unrepresentable"
        );
    }

    #[test]
    fn gate_display_and_eq() {
        let a = SymExpr::gate(&x(), Some(&SymExpr::constant(1)), None).unwrap();
        let b = SymExpr::gate(&x(), Some(&SymExpr::constant(1)), None).unwrap();
        let c = SymExpr::gate(&x(), Some(&SymExpr::constant(2)), None).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "γ(arg0 ? 1 : ⊥)");
    }

    #[test]
    fn display_readable() {
        let e = bin(
            BinOp::Div,
            &bin(BinOp::Add, &x(), &SymExpr::constant(1)),
            &SymExpr::constant(2),
        );
        assert_eq!(e.to_string(), "(1 + arg0 / 2)");
    }

    #[test]
    fn tightened_caps_shrink_representable_expressions() {
        let tight = ExprCaps {
            max_nodes: 4,
            poly: PolyCaps {
                max_terms: 1,
                max_degree: 1,
            },
        };
        // x + 1 needs two polynomial terms: rejected under the tight
        // caps (the opaque-node fallback for Add also exceeds nothing,
        // but Add of two polys that overflows falls through to a node of
        // size 1 + 2 + 2 = 5 > 4).
        assert!(SymExpr::binop_with(BinOp::Add, &x(), &SymExpr::constant(1), &tight).is_none());
        // Constant folding still works regardless of caps.
        assert_eq!(
            SymExpr::binop_with(
                BinOp::Add,
                &SymExpr::constant(2),
                &SymExpr::constant(3),
                &tight
            )
            .unwrap()
            .as_const(),
            Some(5)
        );
        // Division of two vars forms a node of size 1+2+2 = 5 > 4.
        assert!(SymExpr::binop_with(BinOp::Div, &x(), &g(), &tight).is_none());
        // not(x) has size 3 ≤ 4 and still builds.
        assert!(SymExpr::not_with(&x(), &tight).is_some());
        // A gate over three vars exceeds the node cap.
        assert!(SymExpr::gate_with(&x(), Some(&g()), None, &tight).is_none());
    }

    #[test]
    fn for_fuel_scales_caps() {
        assert_eq!(ExprCaps::for_fuel(None), ExprCaps::default());
        let small = ExprCaps::for_fuel(Some(8));
        assert_eq!(small.max_nodes, 8);
        assert_eq!(small.poly.max_terms, 1);
        assert_eq!(small.poly.max_degree, 1);
        let zero = ExprCaps::for_fuel(Some(0));
        assert_eq!(zero.max_nodes, 4, "floor keeps trivial exprs buildable");
        let large = ExprCaps::for_fuel(Some(u64::MAX));
        assert_eq!(large, ExprCaps::default());
    }
}
